"""Seeded fault-injection matrix for the remote shard backend.

Every test in this file injects a deterministic failure — a node killed,
wedged, or slowed at an exact protocol state via the ``remote.node.*``
failpoints, or a coordinator-side send failure via ``remote.send.*`` —
and then asserts one of exactly two permitted outcomes:

* **bit-identical**: surviving nodes adopted the orphaned shards and
  replayed ``spawn(plan_seed, S)[s]``, so the released outputs equal a
  healthy run byte for byte; or
* **finite degrade**: no node could answer a shard, so its rows are the
  query's *data-independent* fallback and the query is flagged in
  telemetry.

A raised exception that could leak raw data is never a permitted
outcome.

Node-side failpoints count frames processed after the handshake
(strictly ordered on one connection), so ``@N`` targets an exact
protocol state.  For the victim node here (2 shards): hit 1-2 are its
SEGMENT frames, 3 the PLAN, 4 the EXECUTE, 5-6 fire just before each
outgoing PARTIAL.  Victims run as subprocesses (armed through the
``REPRO_FAILPOINTS`` environment), so a ``crash`` is a genuinely dead
peer and never takes the test process with it.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.runtime.remote import RemoteShardBackend
from repro.runtime.shard import ShardQuerySpec, ShardedExecutionBackend
from repro.testing import failpoints

SRC_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

SEED = 424242
SHARDS = 4
FALLBACK = -1.0  # outside the data range [0, 100]: fallback rows are unmistakable

SPEC = ShardQuerySpec(
    dataset="fault-data",
    version=1,
    num_records=400,
    block_size=20,
    resampling_factor=1,
    plan_seed=97,
    shards=SHARDS,
    output_dimension=1,
    fallback=(FALLBACK,),
    clamp_lo=(0.0,),
    clamp_hi=(100.0,),
)

PROGRAM = pickle.dumps(Mean())


def _values() -> np.ndarray:
    return np.random.default_rng(SEED).uniform(0.0, 100.0, size=(SPEC.num_records, 1))


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture(scope="module")
def baseline():
    """The healthy release: outputs from the in-process sharded engine.

    Using the *in-process* backend as the golden makes every
    bit-identical assertion below also a cross-transport determinism
    check, not just remote-vs-remote.
    """
    backend = ShardedExecutionBackend(shards=SHARDS, metrics=MetricsRegistry())
    try:
        _, batch = backend.run_sharded(PROGRAM, _values(), SPEC)
    finally:
        backend.close()
    assert batch.succeeded.all(), "baseline must succeed on every block"
    return batch.outputs.copy()


def _spawn_victim(arming: str) -> tuple[subprocess.Popen, str]:
    """Start one subprocess shard node with ``REPRO_FAILPOINTS`` armed."""
    env = {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            p for p in (SRC_PATH, os.environ.get("PYTHONPATH")) if p
        ),
        failpoints.ENV_VAR: arming,
    }
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-node", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = process.stdout.readline().strip()
    parts = line.split()
    assert parts and parts[0] == "LISTENING", f"victim failed to start: {line!r}"
    return process, f"{parts[1]}:{parts[2]}"


def _run_with_victim(arming: str, node_timeout: float) -> tuple[np.ndarray, np.ndarray, MetricsRegistry]:
    """One query against [armed victim, healthy thread node]."""
    victim, victim_address = _spawn_victim(arming)
    metrics = MetricsRegistry()
    try:
        from repro.runtime.remote import ShardNodeServer

        healthy = ShardNodeServer()
        host, port = healthy.start()
        try:
            backend = RemoteShardBackend(
                shards=SHARDS,
                nodes=[victim_address, f"{host}:{port}"],
                metrics=metrics,
                heartbeat_interval=None,
                node_timeout=node_timeout,
            )
            try:
                _, batch = backend.run_sharded(PROGRAM, _values(), SPEC)
            finally:
                backend.close()
        finally:
            healthy.stop()
    finally:
        victim.kill()
        victim.wait(timeout=5.0)
    return batch.outputs, batch.succeeded, metrics


#: Protocol states of the victim node (2 shards), by failpoint hit count.
PROTOCOL_STATES = {
    "registration-first-segment": 1,
    "dispatch-plan": 3,
    "dispatch-execute": 4,
    "combine-before-first-partial": 5,
    "combine-between-partials": 6,
}


class TestNodeCrashMatrix:
    """kill -9 the victim at every protocol state: outputs never change."""

    @pytest.mark.parametrize("state", sorted(PROTOCOL_STATES))
    def test_crash_is_absorbed_bit_identically(self, state, baseline):
        hit = PROTOCOL_STATES[state]
        outputs, succeeded, metrics = _run_with_victim(
            f"remote.node.crash=crash@{hit}", node_timeout=10.0
        )
        np.testing.assert_array_equal(outputs, baseline)
        assert succeeded.all()
        assert metrics.counter("remote.node_deaths").value >= 1
        assert metrics.counter("remote.degraded_queries").value == 0
        reassigned = metrics.counter("remote.reassigned_shards").value
        if state == "combine-between-partials":
            # The victim delivered its first PARTIAL before dying: only
            # the second shard needs a new home.
            assert reassigned == 1
        elif state in ("dispatch-execute", "combine-before-first-partial"):
            # Dispatch demonstrably completed (the victim processed the
            # EXECUTE), so both its shards go through re-assignment.
            assert reassigned == 2
        else:
            # Early crashes race TCP buffering: the coordinator may see
            # the death during dispatch (shards adopted pre-assignment,
            # not counted as re-assigned) or during collect (counted).
            assert reassigned in (0, 2)


class TestNodeHangMatrix:
    """A wedged node (alive TCP, no frames) trips the liveness deadline."""

    @pytest.mark.parametrize(
        "state",
        ["registration-first-segment", "dispatch-execute", "combine-before-first-partial"],
    )
    def test_hang_is_absorbed_bit_identically(self, state, baseline):
        hit = PROTOCOL_STATES[state]
        outputs, succeeded, metrics = _run_with_victim(
            f"remote.node.hang=hang@{hit}", node_timeout=1.0
        )
        np.testing.assert_array_equal(outputs, baseline)
        assert succeeded.all()
        assert metrics.counter("remote.node_deaths").value >= 1
        assert metrics.counter("remote.reassigned_shards").value == 2
        assert metrics.counter("remote.degraded_queries").value == 0


class TestNodeSlowMatrix:
    """Slowness alone must never change bits or trigger re-assignment."""

    @pytest.mark.parametrize("state", ["dispatch-execute", "combine-between-partials"])
    def test_slow_node_changes_nothing(self, state, baseline):
        hit = PROTOCOL_STATES[state]
        outputs, succeeded, metrics = _run_with_victim(
            f"remote.node.slow=slow@{hit}",
            node_timeout=max(10.0, failpoints.SLOW_SECONDS * 40),
        )
        np.testing.assert_array_equal(outputs, baseline)
        assert succeeded.all()
        assert metrics.counter("remote.node_deaths").value == 0
        assert metrics.counter("remote.reassigned_shards").value == 0


class TestCoordinatorSendFaults:
    """Injected failures on the coordinator's own sends.

    Nodes are subprocesses here so the in-process failpoints hit *only*
    coordinator writes, keeping ``@N`` deterministic.  The coordinator's
    send sequence for two nodes is: HELLO(1), SEGMENT(2), SEGMENT(3),
    PLAN(4), EXECUTE(5) to node 0, then HELLO(6) ... EXECUTE(10) to
    node 1.
    """

    @pytest.mark.parametrize("site", ["remote.send.pre", "remote.send.torn", "remote.send.post"])
    @pytest.mark.parametrize("hit", [2, 4, 5], ids=["segment", "plan", "execute"])
    def test_send_fault_is_absorbed_bit_identically(self, site, hit, baseline):
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=2,
            node_spawn="process",
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=10.0,
        )
        try:
            failpoints.arm(site, "error", fire_on_hit=hit)
            _, batch = backend.run_sharded(PROGRAM, _values(), SPEC)
        finally:
            failpoints.reset()
            backend.close()
        np.testing.assert_array_equal(batch.outputs, baseline)
        assert batch.succeeded.all()
        assert metrics.counter("remote.degraded_queries").value == 0


class TestQuorumDegrade:
    """No node can answer: finite, data-independent fallback — no raise."""

    def test_unreachable_cluster_degrades_to_fallback(self, baseline):
        metrics = MetricsRegistry()
        # Nobody listens on these ports: every dial fails instantly.
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=["127.0.0.1:1", "127.0.0.1:2"],
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=1.0,
        )
        try:
            _, batch = backend.run_sharded(PROGRAM, _values(), SPEC)
        finally:
            backend.close()
        assert not batch.succeeded.any()
        np.testing.assert_array_equal(
            batch.outputs, np.full_like(batch.outputs, FALLBACK)
        )
        assert metrics.counter("remote.degraded_queries").value == 1
        assert metrics.counter("remote.fallback_shards").value == SHARDS

    def test_whole_cluster_crash_degrades_to_fallback(self, baseline):
        # Every node crashes on its first frame: dispatch, adoption and
        # retry all fail, and every shard resolves to fallback.
        metrics = MetricsRegistry()
        victims = [_spawn_victim("remote.node.crash=crash@1") for _ in range(2)]
        try:
            backend = RemoteShardBackend(
                shards=SHARDS,
                nodes=[address for _, address in victims],
                metrics=metrics,
                heartbeat_interval=None,
                node_timeout=5.0,
            )
            try:
                _, batch = backend.run_sharded(PROGRAM, _values(), SPEC)
            finally:
                backend.close()
        finally:
            for process, _ in victims:
                process.kill()
                process.wait(timeout=5.0)
        assert not batch.succeeded.any()
        np.testing.assert_array_equal(
            batch.outputs, np.full_like(batch.outputs, FALLBACK)
        )
        assert metrics.counter("remote.degraded_queries").value == 1
        assert metrics.counter("remote.fallback_shards").value == SHARDS


class TestRecoveryBetweenQueries:
    """Death between queries: heartbeat detection, re-dial, re-push."""

    def test_heartbeat_detects_dead_node(self):
        victim, victim_address = _spawn_victim("")  # healthy, no arming
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=[victim_address],
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=2.0,
        )
        try:
            _, batch = backend.run_sharded(PROGRAM, _values(), SPEC)
            assert batch.succeeded.all()
            assert backend.heartbeat_once() == [True]
            victim.kill()
            victim.wait(timeout=5.0)
            assert backend.heartbeat_once() == [False]
            assert metrics.counter("remote.node_deaths").value == 1
            # The dropped slot reports dead without re-dialing...
            assert backend.heartbeat_once() == [False]
        finally:
            backend.close()
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=5.0)

    def test_query_after_node_death_reconnects_and_repushes(self, baseline):
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=2,
            node_spawn="process",
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=10.0,
        )
        try:
            _, first = backend.run_sharded(PROGRAM, _values(), SPEC)
            assert first.succeeded.all()
            # Kill node 0 between queries; the next dispatch re-dials,
            # fails, and hands its shards to the survivor with a fresh
            # segment push.
            backend._cluster._processes[0].kill()
            backend._cluster._processes[0].wait(timeout=5.0)
            backend._drop_session(0)
            _, second = backend.run_sharded(PROGRAM, _values(), SPEC)
        finally:
            backend.close()
        np.testing.assert_array_equal(first.outputs, baseline)
        np.testing.assert_array_equal(second.outputs, baseline)
        assert second.succeeded.all()
        assert metrics.counter("remote.degraded_queries").value == 0


class TestSegmentEviction:
    """Dataset rotation past an LRU capacity must re-push, not degrade.

    ``session.held`` is a cache of pushes, not a lease: when either side
    evicts a dataset the coordinator must re-push instead of trusting
    node residency — silently substituting fallback rows for resident-
    looking shards would break bit-identity with the in-process engine.
    """

    def _rotation_specs(self, count: int):
        from dataclasses import replace

        return [replace(SPEC, dataset=f"rotate-{i}") for i in range(count)]

    def test_coordinator_eviction_forgets_pushes(self, baseline):
        # Coordinator LRU of 1, node LRU at its default of 4, rotating 5
        # datasets: both sides evict constantly, and every eviction must
        # translate into a fresh push on the dataset's return.
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=1,
            resident_datasets=1,
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=10.0,
        )
        values = _values()
        try:
            for _ in range(2):
                for spec in self._rotation_specs(5):
                    _, batch = backend.run_sharded(PROGRAM, values, spec)
                    np.testing.assert_array_equal(batch.outputs, baseline)
                    assert batch.succeeded.all()
        finally:
            backend.close()
        assert metrics.counter("remote.degraded_queries").value == 0
        assert metrics.counter("remote.fallback_shards").value == 0

    def test_node_side_eviction_triggers_repush_retry(self, baseline):
        # The inverse skew: the coordinator retains both datasets but
        # the node's segment LRU (capacity 1) evicted the first.  The
        # node's PARTIAL_MISSING(no_segment) must be taken as a cue to
        # re-push and re-execute, not as a shrug into fallback rows.
        from repro.runtime.remote import ShardNodeServer

        metrics = MetricsRegistry()
        node = ShardNodeServer(resident_datasets=1)
        host, port = node.start()
        values = _values()
        spec_a, spec_b = self._rotation_specs(2)
        try:
            backend = RemoteShardBackend(
                shards=SHARDS,
                nodes=[f"{host}:{port}"],
                resident_datasets=8,
                metrics=metrics,
                heartbeat_interval=None,
                node_timeout=10.0,
            )
            try:
                for spec in (spec_a, spec_b, spec_a):
                    _, batch = backend.run_sharded(PROGRAM, values, spec)
                    np.testing.assert_array_equal(batch.outputs, baseline)
                    assert batch.succeeded.all()
            finally:
                backend.close()
        finally:
            node.stop()
        # Every shard of the returning dataset was disclaimed once and
        # healed by a re-push — never a death, never a fallback.
        assert metrics.counter("remote.repushed_shards").value == SHARDS
        assert metrics.counter("remote.node_deaths").value == 0
        assert metrics.counter("remote.degraded_queries").value == 0


class TestPartialAssignmentGating:
    """Only the node a shard is assigned to may answer for it."""

    def _harness(self):
        from repro.core.blocks import shard_block_counts
        from repro.runtime.remote import wire

        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=["127.0.0.1:1", "127.0.0.1:2"],  # never dialed here
            metrics=MetricsRegistry(),
            heartbeat_interval=None,
        )
        counts = shard_block_counts(
            SPEC.num_records, SPEC.block_size, SPEC.resampling_factor, SPEC.shards
        )
        bases = np.zeros(SHARDS + 1, dtype=np.int64)
        np.cumsum(counts, out=bases[1:])
        total = int(bases[-1])
        state = {
            "bases": bases,
            "counts": counts,
            "outputs": np.full((total, SPEC.output_dimension), 123.0),
            "succeeded": np.zeros(total, dtype=bool),
            "filled": np.zeros(SHARDS, dtype=bool),
        }

        def partial_frame(shard: int):
            rows = int(counts[shard])
            body = (
                np.zeros((rows, SPEC.output_dimension)).tobytes() + b"\x01" * rows
            )
            return wire.Frame(
                kind=wire.PARTIAL,
                header={
                    "qid": 1,
                    "shard": shard,
                    "shape": [rows, SPEC.output_dimension],
                    "elapsed": 0.0,
                },
                body=body,
            )

        def apply(index, frame, pending):
            backend._apply_frame(
                index, frame, 1, SPEC, state["bases"], state["counts"],
                state["outputs"], state["succeeded"], state["filled"],
                pending, {}, (SPEC.dataset, SPEC.version),
                np.zeros((SPEC.num_records, 1)), set(), PROGRAM,
                MetricsRegistry(),
            )

        return backend, state, partial_frame, apply

    def test_partial_for_unassigned_shard_is_ignored(self):
        backend, state, partial_frame, apply = self._harness()
        try:
            # Node 0 owes shards {0, 1} but claims shard 2 (node 1's):
            # the claim must not clobber anything.
            apply(0, partial_frame(2), {0: {0, 1}, 1: {2, 3}})
            assert not state["filled"].any()
            assert (state["outputs"] == 123.0).all()
        finally:
            backend.close()

    def test_partial_from_non_owner_node_is_ignored(self):
        backend, state, partial_frame, apply = self._harness()
        try:
            # Node 1 owes nothing for shard 0; only node 0's answer lands.
            apply(1, partial_frame(0), {0: {0, 1}})
            assert not state["filled"].any()
            apply(0, partial_frame(0), {0: {0, 1}})
            assert state["filled"][0]
            assert (state["outputs"][: int(state["counts"][0])] == 0.0).all()
        finally:
            backend.close()


class TestHeartbeatIntegrity:
    """Heartbeat regressions: PONG replay and per-round accounting."""

    def test_replayed_pong_token_is_not_accepted(self):
        """A node replaying an old PONG must be dropped, not trusted.

        Every PING carries a fresh token and the PONG must echo exactly
        that token — a wedged node stuck re-sending its last answer (or
        a middlebox duplicating frames) can no longer vouch for a dead
        session by replaying a stale PONG.
        """
        import socket
        import threading

        from repro.runtime.remote import wire

        ready = threading.Event()
        box: dict = {}

        def replaying_node():
            listener = socket.create_server(("127.0.0.1", 0))
            box["address"] = listener.getsockname()
            ready.set()
            conn, _ = listener.accept()
            listener.close()
            try:
                hello = wire.read_frame(conn, timeout=5.0)
                assert hello.kind == wire.HELLO
                wire.send_frame(
                    conn,
                    wire.WELCOME,
                    {
                        "protocol": wire.REMOTE_PROTOCOL_VERSION,
                        "shards_held": 0,
                        "manifests": [],
                        "authenticated": False,
                    },
                )
                stale = None
                while True:
                    frame = wire.read_frame(conn, timeout=5.0)
                    if frame.kind != wire.PING:
                        break
                    if stale is None:
                        stale = frame.header["token"]
                    # Honest echo once, then replay the stale token.
                    wire.send_frame(conn, wire.PONG, {"token": stale})
            except (OSError, wire.FrameError):
                pass
            finally:
                conn.close()

        thread = threading.Thread(target=replaying_node, daemon=True)
        thread.start()
        assert ready.wait(5.0)
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=["{0}:{1}".format(*box["address"])],
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=2.0,
        )
        try:
            assert backend._session(0) is not None
            # Round 1: the echoed token matches (it *is* the fresh one).
            assert backend.heartbeat_once() == [True]
            # Round 2: the node replays round 1's token -> dropped.
            assert backend.heartbeat_once() == [False]
            assert backend._sessions[0] is None
            assert metrics.counter("remote.node_deaths").value == 1
        finally:
            backend.close()
            thread.join(timeout=5.0)

    def test_heartbeats_count_rounds_not_node_slots(self):
        """``remote.heartbeats`` tracks probing cadence, not cluster size."""
        from repro.runtime.remote import ShardNodeServer

        nodes = [ShardNodeServer(), ShardNodeServer()]
        addresses = ["{0}:{1}".format(*n.start()) for n in nodes]
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=addresses,
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=5.0,
        )
        try:
            # No session connected yet: the round sends no PING at all
            # and must not count as a heartbeat.
            assert backend.heartbeat_once() == [False, False]
            assert metrics.counter("remote.heartbeats").value == 0
            for index in range(2):
                assert backend._session(index) is not None
            for round_number in range(1, 4):
                assert backend.heartbeat_once() == [True, True]
                assert (
                    metrics.counter("remote.heartbeats").value == round_number
                ), "one increment per round, not one per node slot"
        finally:
            backend.close()
            for node in nodes:
                node.stop()


class TestCuratorDeath:
    """A dead curator degrades its shards to fallback — never an exception."""

    def test_curator_death_degrades_to_fallback_rows(self, baseline):
        from dataclasses import replace

        from repro.datasets.table import FederatedValues
        from repro.runtime.remote import ShardNodeServer

        values = _values()
        spec = replace(SPEC, dataset="curated-fault-data")
        # Two curators holding the halves: bases 0 and 200 both land on
        # shard_offsets(400, 4) boundaries, so each owns 2 whole shards.
        curators = [
            ShardNodeServer(curated={spec.dataset: values[:200]}),
            ShardNodeServer(curated={spec.dataset: values[200:]}),
        ]
        addresses = ["{0}:{1}".format(*c.start()) for c in curators]
        metrics = MetricsRegistry()
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=addresses,
            metrics=metrics,
            heartbeat_interval=None,
            node_timeout=5.0,
        )
        proxy = FederatedValues(spec.num_records, 1)
        try:
            geometry = backend.federate(spec.dataset)
            assert geometry["num_records"] == spec.num_records
            _, healthy = backend.run_sharded(PROGRAM, proxy, spec)
            assert healthy.succeeded.all()
            np.testing.assert_array_equal(healthy.outputs, baseline)
            # Kill the first curator between queries.  Its rows exist
            # nowhere else: the survivor cannot adopt them, and the
            # query must degrade those shards to fallback, not raise.
            curators[0].stop()
            _, degraded = backend.run_sharded(PROGRAM, proxy, spec)
        finally:
            backend.close()
            for curator in curators[1:]:
                curator.stop()
        assert degraded.succeeded.any(), "the survivor's shards still answer"
        assert not degraded.succeeded.all(), "the dead curator's shards cannot"
        np.testing.assert_array_equal(
            degraded.outputs[degraded.succeeded], baseline[degraded.succeeded]
        )
        np.testing.assert_array_equal(
            degraded.outputs[~degraded.succeeded],
            np.full_like(degraded.outputs[~degraded.succeeded], FALLBACK),
        )
        assert metrics.counter("remote.degraded_queries").value == 1
        assert metrics.counter("remote.fallback_shards").value == 2
