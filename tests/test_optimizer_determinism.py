"""Cross-query optimization must never change the released bits.

Two matrices pin the tentpole invariant of :mod:`repro.optimizer`:

* **Answer cache × backend**: for every execution backend, a seeded
  query releases bit-identical values with the cache disabled, on a
  cold cache (miss + store) and on a warm cache (replay) — the cache
  probe consumes no generator draws, and a replay is the stored bits.
* **Batch fusion × scheduling**: coalescing adjacent same-plan queries
  into one stacked dispatch is pure scheduling; fused and unfused
  services release identical bits for identical seeded requests.

Plus the scheduler-level mechanics underneath fusion: adjacency-only
coalescing, the per-dataset slot held across the whole batch, and the
fusion-disabled default.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.optimizer.fusion import default_fusion_key
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.service import (
    ANALYST,
    OWNER,
    GuptService,
    QueryRequest,
    QueryResponse,
)

SEED = 424242
QUERY_SEED = 7
EPSILON = 0.5
BLOCK_SIZE = 50
NUM_RECORDS = 1_000

BACKENDS = [None, "thread", "pool", "vectorized", "sharded", "remote"]


def _values() -> np.ndarray:
    return np.random.default_rng(SEED).uniform(0.0, 100.0, size=(NUM_RECORDS, 1))


def _release(runtime) -> tuple:
    result = runtime.run(
        "data",
        Mean(),
        TightRange((0.0, 100.0)),
        epsilon=EPSILON,
        block_size=BLOCK_SIZE,
        rng=QUERY_SEED,
    )
    return tuple(float(v) for v in result.value), result.cached


def _runtime(backend, answer_cache_size=None) -> GuptRuntime:
    manager = DatasetManager()
    manager.register(
        "data", DataTable(_values(), input_ranges=[(0.0, 100.0)]),
        total_budget=100.0,
    )
    return GuptRuntime(
        manager, rng=SEED, backend=backend, workers=2, shards=2,
        answer_cache_size=answer_cache_size,
    )


class TestAnswerCacheMatrix:
    @pytest.mark.parametrize(
        "backend", BACKENDS, ids=[b or "serial" for b in BACKENDS]
    )
    def test_disabled_cold_warm_release_identical_bits(self, backend):
        with _runtime(backend) as plain:
            disabled, _ = _release(plain)
        with _runtime(backend, answer_cache_size=16) as cached:
            cold, cold_hit = _release(cached)
            warm, warm_hit = _release(cached)
        assert not cold_hit and warm_hit
        assert disabled == cold == warm

    def test_backends_agree_with_each_other(self):
        releases = set()
        for backend in BACKENDS:
            with _runtime(backend, answer_cache_size=16) as runtime:
                releases.add(_release(runtime)[0])
        assert len(releases) == 1


#: Set by ``slow_mean`` on its first block: the event-based signal that
#: the scheduler's single worker has actually taken the blocker query
#: (replacing a poll-and-sleep loop on the scheduler state — see the
#: DESIGN.md testing section).
BLOCKER_STARTED = threading.Event()


def slow_mean(block: np.ndarray) -> float:
    BLOCKER_STARTED.set()
    time.sleep(0.005)
    return float(np.mean(block))


class TestServiceFusionMatrix:
    def _drive(self, fusion_limit):
        """Three seeded same-plan queries behind a slow blocker; returns
        (values, metrics snapshot)."""
        service = GuptService(
            rng=7, scheduler_workers=1, fusion_limit=fusion_limit,
            metrics=MetricsRegistry(),
        )
        try:
            owner = service.enroll(OWNER).token
            analyst = service.enroll(ANALYST).token
            service.register_dataset(
                owner, "data",
                DataTable(_values(), input_ranges=[(0.0, 100.0)]),
                100.0,
            )
            service.register_dataset(
                owner, "blocker",
                DataTable(_values(), input_ranges=[(0.0, 100.0)]),
                100.0,
            )
            BLOCKER_STARTED.clear()
            blocker = service.submit(analyst, QueryRequest(
                dataset="blocker", program=slow_mean,
                range_strategy=TightRange((0.0, 100.0)),
                epsilon=EPSILON, output_dimension=1, block_size=BLOCK_SIZE,
            ))
            # Wait until the single worker has actually taken the
            # blocker (its program signals from inside the first block),
            # so the seeded queries below all queue up behind it —
            # adjacent in the dataset FIFO, which is what fusion
            # coalesces.
            assert BLOCKER_STARTED.wait(5.0), "blocker never started running"
            handles = [
                service.submit(analyst, QueryRequest(
                    dataset="data", program=Mean(),
                    range_strategy=TightRange((0.0, 100.0)),
                    epsilon=EPSILON, block_size=BLOCK_SIZE,
                    seed=QUERY_SEED + i,
                ))
                for i in range(3)
            ]
            responses = [service.result(handle) for handle in handles]
            assert service.result(blocker).ok
            assert all(r.ok for r in responses), responses
            values = [r.value for r in responses]
            counters = service.metrics_snapshot()["counters"]
            return values, counters
        finally:
            service.close()

    def test_fused_matches_unfused_bit_for_bit(self):
        fused_values, fused_counters = self._drive(fusion_limit=4)
        unfused_values, unfused_counters = self._drive(fusion_limit=None)
        assert fused_values == unfused_values
        assert fused_counters["optimizer.fused_batches"] >= 1.0
        assert fused_counters["optimizer.fused_queries"] >= 2.0
        assert "optimizer.fused_batches" not in unfused_counters

    def test_fusion_key_requires_seed_and_simple_plan(self):
        seeded = SimpleNamespace(
            dataset="d", block_size=50, resampling_factor=1,
            group_by=None, seed=3,
        )
        assert default_fusion_key(seeded) == ("d", 50, 1)
        unseeded = SimpleNamespace(
            dataset="d", block_size=50, resampling_factor=1,
            group_by=None, seed=None,
        )
        assert default_fusion_key(unseeded) is None
        grouped = SimpleNamespace(
            dataset="d", block_size=50, resampling_factor=1,
            group_by="region", seed=3,
        )
        assert default_fusion_key(grouped) is None


class TestSchedulerFusionMechanics:
    def _scheduler(self, registry, fusion_key, fusion_limit=4):
        return QueryScheduler(
            workers=1, metrics=registry,
            fusion_key=fusion_key, fusion_limit=fusion_limit,
        )

    def test_adjacent_same_key_queries_fuse(self):
        registry = MetricsRegistry()
        gate = threading.Event()
        running = threading.Event()
        dispatched = []

        def runner(request):
            if request.dataset == "blocker":
                running.set()
                gate.wait(5.0)
            dispatched.append((request.dataset, request.tag))
            return QueryResponse(ok=True, value=(1.0,), epsilon_charged=0.0)

        def key(request):
            return (request.dataset,) if request.dataset == "d" else None

        with self._scheduler(registry, key, fusion_limit=3) as scheduler:
            blocker = scheduler.submit(
                runner, SimpleNamespace(dataset="blocker", tag=0)
            )
            assert running.wait(5.0)
            handles = [
                scheduler.submit(runner, SimpleNamespace(dataset="d", tag=i))
                for i in range(1, 5)
            ]
            gate.set()
            assert scheduler.result(blocker).ok
            assert all(scheduler.result(h).ok for h in handles)

        # FIFO order survives fusion.
        assert [tag for _, tag in dispatched if _ == "d"] == [1, 2, 3, 4]
        counters = registry.snapshot()["counters"]
        # limit 3: leader + two followers fuse; the fourth runs alone.
        assert counters["optimizer.fused_batches"] == 1.0
        assert counters["optimizer.fused_queries"] == 2.0

    def test_non_matching_keys_do_not_fuse(self):
        registry = MetricsRegistry()
        gate = threading.Event()
        running = threading.Event()

        def runner(request):
            if request.dataset == "blocker":
                running.set()
                gate.wait(5.0)
            return QueryResponse(ok=True, value=(1.0,), epsilon_charged=0.0)

        def key(request):
            return (request.dataset, request.tag)  # all distinct

        with self._scheduler(registry, key) as scheduler:
            blocker = scheduler.submit(
                runner, SimpleNamespace(dataset="blocker", tag=0)
            )
            assert running.wait(5.0)
            handles = [
                scheduler.submit(runner, SimpleNamespace(dataset="d", tag=i))
                for i in range(1, 4)
            ]
            gate.set()
            assert scheduler.result(blocker).ok
            assert all(scheduler.result(h).ok for h in handles)
        counters = registry.snapshot()["counters"]
        assert counters["optimizer.fused_batches"] == 0.0

    def test_fusion_disabled_by_default(self):
        registry = MetricsRegistry()
        with QueryScheduler(workers=1, metrics=registry) as scheduler:
            handle = scheduler.submit(
                lambda request: QueryResponse(
                    ok=True, value=(1.0,), epsilon_charged=0.0
                ),
                SimpleNamespace(dataset="d"),
            )
            assert scheduler.result(handle).ok
        assert "optimizer.fused_batches" not in registry.snapshot()["counters"]

    def test_fusion_limit_validated(self):
        with pytest.raises(Exception):
            QueryScheduler(
                workers=1, metrics=MetricsRegistry(),
                fusion_key=lambda request: ("k",), fusion_limit=0,
            )
