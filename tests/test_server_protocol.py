"""Wire-protocol conformance: the HTTP front door's contract is pinned.

Three layers of golden tests:

1. **Encoding round-trips** — every field of ``QueryResponse`` survives
   ``response_to_wire`` → JSON → ``wire_to_response`` bit-for-bit.
2. **The code/status table** — ``STATUS_FOR_CODE``, the per-exception
   wire codes and ``PROTOCOL_VERSION`` are asserted against literal
   values.  If one of these tests fails, the change is a *breaking
   protocol change*: clients in the field pin these strings.
3. **Live conformance** — a real server is driven through every
   refusal/error class (auth failure, unknown dataset, budget
   exhausted, queue full, max inflight, timeout, cancelled, pending,
   invalid requests) and must answer with exactly the pinned status and
   ``code``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from contextlib import contextmanager

import numpy as np
import pytest

from repro.exceptions import (
    AccuracyGoalInfeasible,
    AuthenticationError,
    AuthorizationError,
    ComputationError,
    DatasetError,
    GuptError,
    InvalidPrivacyParameter,
    InvalidRange,
    JournalCorruption,
    JournalError,
    PrivacyBudgetExhausted,
    SandboxViolation,
    UnknownHandleError,
)
from repro.runtime.service import GuptService, QueryResponse
from repro.server import protocol
from repro.server.client import Backpressure, GuptClient, ServerError
from repro.server.http import GuptHttpServer

ADMIN = "test-admin-token"
RANGE = [0.0, 100.0]


def query_body(dataset="census", *, epsilon=0.25, seed=None, name="mean", **extra):
    body = {
        "dataset": dataset,
        "program": {"name": name},
        "range": {"kind": "tight", "ranges": [RANGE]},
        "epsilon": epsilon,
    }
    if seed is not None:
        body["seed"] = seed
    body.update(extra)
    return body


@contextmanager
def server_stack(register: bool = True, num_records: int = 400, budget: float = 50.0,
                 **service_kwargs):
    """A live server plus owner/analyst clients."""
    service = GuptService(rng=0, **service_kwargs)
    server = GuptHttpServer(service, admin_token=ADMIN)
    host, port = server.start()
    bootstrap = GuptClient(host, port)
    owner = GuptClient(host, port, token=bootstrap.enroll("owner", "o", ADMIN))
    analyst = GuptClient(host, port, token=bootstrap.enroll("analyst", "a", ADMIN))
    try:
        if register:
            values = np.random.default_rng(7).uniform(
                *RANGE, size=num_records
            ).tolist()
            owner.register_dataset(
                "census", values, total_budget=budget,
                column_names=["x"], input_ranges=[RANGE],
            )
        yield server, owner, analyst
    finally:
        for client in (bootstrap, owner, analyst):
            client.close()
        server.stop()
        service.close()


def submit_and_wait(analyst: GuptClient, body) -> tuple[int, dict]:
    """Submit, then poll to the terminal payload; returns (status, payload)."""
    query_id = analyst.submit(body)
    while True:
        status, _, payload = analyst.raw_request(
            "GET", f"/v1/queries/{query_id}?timeout=5"
        )
        if status != 202 or payload.get("status") != "pending":
            return status, payload


# ----------------------------------------------------------------------
# 1. Encoding round-trips
# ----------------------------------------------------------------------
class TestWireRoundTrip:
    def test_every_field_round_trips(self):
        response = QueryResponse(
            ok=False,
            value=(1.5, -2.25, 0.1 + 0.2),
            epsilon_charged=0.30000000000000004,
            error="budget says no",
            epsilon_rolled_back=1e-17,
            code="budget_exhausted",
        )
        wire = json.loads(json.dumps(protocol.response_to_wire(response)))
        assert protocol.wire_to_response(wire) == response

    def test_success_round_trips(self):
        response = QueryResponse(ok=True, value=(42.000000000000007,),
                                 epsilon_charged=0.5)
        wire = json.loads(json.dumps(protocol.response_to_wire(response)))
        assert protocol.wire_to_response(wire) == response

    def test_floats_are_bit_identical(self):
        # JSON numbers serialize via repr (shortest round-trip), so any
        # released double crosses the wire unchanged.
        for value in (math.pi, 1e-308, 1.7976931348623157e308, -0.0,
                      2.0 ** -1074, 48.66024209179253):
            wire = json.loads(json.dumps(protocol.response_to_wire(
                QueryResponse(ok=True, value=(value,))
            )))
            decoded = protocol.wire_to_response(wire)
            assert decoded.value[0] == value
            assert math.copysign(1.0, decoded.value[0]) == math.copysign(1.0, value)

    def test_wire_covers_all_dataclass_fields(self):
        # A future field added to QueryResponse must show up on the wire
        # (and in this suite) or this breaks loudly.
        field_names = {f.name for f in dataclasses.fields(QueryResponse)}
        wire = protocol.response_to_wire(QueryResponse(ok=True))
        assert set(wire) == field_names == {
            "ok", "value", "epsilon_charged", "error",
            "epsilon_rolled_back", "code", "cached",
        }

    def test_defaults_are_fillable(self):
        assert protocol.wire_to_response({"ok": True}) == QueryResponse(ok=True)
        refusal = protocol.wire_to_response({"ok": False})
        assert refusal.code == "gupt_error"

    def test_malformed_wire_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.wire_to_response({"value": [1.0]})


# ----------------------------------------------------------------------
# 2. The pinned contract tables
# ----------------------------------------------------------------------
class TestGoldenContract:
    def test_protocol_version(self):
        assert protocol.PROTOCOL_VERSION == 1

    def test_status_table_is_pinned(self):
        # Literal golden copy: any edit here is a breaking change.
        assert protocol.STATUS_FOR_CODE == {
            "ok": 200,
            "pending": 202,
            "invalid_request": 400,
            "gupt_error": 400,
            "invalid_privacy_parameter": 400,
            "invalid_range": 400,
            "svt_error": 400,
            "unauthenticated": 401,
            "budget_exhausted": 402,
            "forbidden": 403,
            "dataset_error": 404,
            "unknown_query": 404,
            "unknown_svt_session": 404,
            "cancelled": 409,
            "not_cancellable": 409,
            "svt_exhausted": 409,
            "accuracy_infeasible": 422,
            "computation_error": 422,
            "sandbox_violation": 422,
            "max_inflight": 429,
            "queue_full": 429,
            "internal_error": 500,
            "journal_corruption": 500,
            "journal_error": 503,
            "scheduler_shutdown": 503,
            "timeout": 504,
        }

    def test_exception_codes_are_pinned(self):
        assert {
            cls: cls.code
            for cls in (
                GuptError, PrivacyBudgetExhausted, InvalidPrivacyParameter,
                InvalidRange, DatasetError, JournalError, JournalCorruption,
                ComputationError, SandboxViolation, AccuracyGoalInfeasible,
                AuthenticationError, AuthorizationError, UnknownHandleError,
            )
        } == {
            GuptError: "gupt_error",
            PrivacyBudgetExhausted: "budget_exhausted",
            InvalidPrivacyParameter: "invalid_privacy_parameter",
            InvalidRange: "invalid_range",
            DatasetError: "dataset_error",
            JournalError: "journal_error",
            JournalCorruption: "journal_corruption",
            ComputationError: "computation_error",
            SandboxViolation: "sandbox_violation",
            AccuracyGoalInfeasible: "accuracy_infeasible",
            AuthenticationError: "unauthenticated",
            AuthorizationError: "forbidden",
            UnknownHandleError: "unknown_query",
        }

    def test_every_exception_code_has_a_status(self):
        for cls in GuptError.__subclasses__() + [GuptError]:
            assert cls.code in protocol.STATUS_FOR_CODE, cls

    def test_retry_after_codes(self):
        assert protocol.RETRY_AFTER_CODES == {
            "max_inflight", "queue_full", "scheduler_shutdown",
        }
        assert protocol.ADMISSION_CODES == {
            "max_inflight", "queue_full", "scheduler_shutdown",
        }


# ----------------------------------------------------------------------
# 3. Live conformance: one test per refusal/error class
# ----------------------------------------------------------------------
class TestAuthConformance:
    def test_missing_token_is_401(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = GuptClient(*server.address).raw_request(
                "GET", "/v1/datasets"
            )
            assert (status, payload["code"]) == (401, "unauthenticated")

    def test_unknown_token_is_401(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = analyst.raw_request(
                "GET", "/v1/datasets", token="forged"
            )
            assert (status, payload["code"]) == (401, "unauthenticated")

    def test_wrong_role_is_403(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = analyst.raw_request(
                "POST", "/v1/datasets",
                {"name": "d", "values": [[1.0]], "total_budget": 1.0},
            )
            assert (status, payload["code"]) == (403, "forbidden")
            # ...and the analyst-only side for an owner token:
            status, _, payload = owner.raw_request(
                "POST", "/v1/queries", query_body()
            )
            assert (status, payload["code"]) == (403, "forbidden")

    def test_enroll_needs_admin_token(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = analyst.raw_request(
                "POST", "/v1/enroll", {"role": "analyst"}, token="wrong-admin"
            )
            assert (status, payload["code"]) == (403, "forbidden")


class TestRefusalConformance:
    def test_unknown_dataset_is_404(self):
        with server_stack() as (server, owner, analyst):
            status, payload = submit_and_wait(analyst, query_body(dataset="nope"))
            assert (status, payload["code"]) == (404, "dataset_error")
            assert payload["ok"] is False

    def test_budget_exhausted_is_402(self):
        with server_stack(budget=1.0) as (server, owner, analyst):
            status, payload = submit_and_wait(analyst, query_body(epsilon=0.75))
            assert (status, payload["code"]) == (200, "ok")
            status, payload = submit_and_wait(analyst, query_body(epsilon=0.75))
            assert (status, payload["code"]) == (402, "budget_exhausted")
            assert payload["epsilon_charged"] == 0.0

    def test_invalid_epsilon_is_400(self):
        with server_stack() as (server, owner, analyst):
            status, payload = submit_and_wait(analyst, query_body(epsilon=-1.0))
            assert (status, payload["code"]) == (400, "invalid_privacy_parameter")

    def test_invalid_range_is_400(self):
        with server_stack() as (server, owner, analyst):
            status, _, payload = analyst.raw_request(
                "POST", "/v1/queries",
                query_body(range={"kind": "tight", "ranges": [[5.0, 1.0]]}),
            )
            assert (status, payload["code"]) == (400, "invalid_range")

    def test_unknown_program_is_400(self):
        with server_stack() as (server, owner, analyst):
            status, _, payload = analyst.raw_request(
                "POST", "/v1/queries", query_body(program={"name": "exfiltrate"})
            )
            assert (status, payload["code"]) == (400, "invalid_request")

    def test_bad_json_is_400(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = analyst.raw_request("POST", "/v1/queries", {})
            assert (status, payload["code"]) == (400, "invalid_request")

    def test_unknown_query_id_is_404(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = analyst.raw_request("GET", "/v1/queries/12345")
            assert (status, payload["code"]) == (404, "unknown_query")

    def test_other_analysts_queries_are_invisible(self):
        with server_stack() as (server, owner, analyst):
            query_id = analyst.submit(query_body(epsilon=0.01))
            other = GuptClient(*server.address)
            other.token = other.enroll("analyst", "rival", ADMIN)
            status, _, payload = other.raw_request("GET", f"/v1/queries/{query_id}")
            other.close()
            assert (status, payload["code"]) == (404, "unknown_query")


class TestBackpressureConformance:
    def test_queue_full_is_429_with_retry_after(self):
        with server_stack(
            num_records=100_000, budget=1e9,
            scheduler_workers=1, max_inflight=64, queue_depth=1,
        ) as (server, owner, analyst):
            slow = query_body(epsilon=0.01, block_size=25)
            first = analyst.submit(slow)
            # Wait until the first query is dispatched (running), so the
            # queue slot is truly the only capacity left.
            while analyst.poll(first).get("state") == "queued":
                pass
            analyst.submit(slow)  # occupies the single queue slot
            with pytest.raises(Backpressure) as caught:
                analyst.submit(slow)
            assert caught.value.status == 429
            assert caught.value.code == "queue_full"
            assert caught.value.retry_after > 0

    def test_max_inflight_is_429(self):
        with server_stack(
            num_records=100_000, budget=1e9,
            scheduler_workers=1, max_inflight=2, queue_depth=64,
        ) as (server, owner, analyst):
            slow = query_body(epsilon=0.01, block_size=25)
            analyst.submit(slow)
            analyst.submit(slow)
            with pytest.raises(Backpressure) as caught:
                analyst.submit(slow)
            assert caught.value.status == 429
            assert caught.value.code == "max_inflight"

    def test_timeout_is_504(self):
        with server_stack(
            num_records=100_000, budget=1e9,
            scheduler_workers=1, query_timeout=0.02,
        ) as (server, owner, analyst):
            slow = query_body(epsilon=0.01, block_size=25)
            analyst.submit(slow)
            queued = analyst.submit(slow)  # stuck behind ~80ms of work
            status, _, payload = analyst.raw_request(
                "GET", f"/v1/queries/{queued}?timeout=10"
            )
            assert (status, payload["code"]) == (504, "timeout")
            assert "no budget was spent" in payload["error"]


class TestCancelConformance:
    def test_cancel_queued_query(self):
        with server_stack(
            num_records=100_000, budget=1e9, scheduler_workers=1,
        ) as (server, owner, analyst):
            slow = query_body(epsilon=0.01, block_size=25)
            analyst.submit(slow)
            queued = analyst.submit(slow)
            assert analyst.cancel(queued) is True
            status, _, payload = analyst.raw_request("GET", f"/v1/queries/{queued}")
            assert (status, payload["code"]) == (409, "cancelled")
            assert payload["ok"] is False

    def test_finished_query_is_not_cancellable(self):
        with server_stack() as (server, owner, analyst):
            query_id = analyst.submit(query_body(epsilon=0.01))
            analyst.result(query_id)
            status, _, payload = analyst.raw_request(
                "DELETE", f"/v1/queries/{query_id}"
            )
            assert (status, payload["code"]) == (409, "not_cancellable")
            assert analyst.cancel(query_id) is False


class TestPendingSemantics:
    """The HTTP mirror of GuptService.result(timeout=...) -> None."""

    def test_pending_poll_is_202_and_harmless(self):
        with server_stack(
            num_records=100_000, budget=1e9, scheduler_workers=1,
        ) as (server, owner, analyst):
            query_id = analyst.submit(query_body(epsilon=0.25, block_size=25,
                                                 seed=11))
            # Expired waits answer pending (never an error), any number
            # of times, without perturbing the query.
            for _ in range(3):
                payload = analyst.poll(query_id, timeout=0)
                if payload.get("status") != "pending":
                    break
                assert payload["code"] == "pending"
                assert payload["state"] in ("queued", "running")
            final = analyst.result(query_id)
            assert final.ok and final.code == "ok"
            # result() after the terminal response keeps returning it.
            assert analyst.result(query_id) == final

    def test_client_result_timeout_returns_none(self):
        with server_stack(
            num_records=100_000, budget=1e9, scheduler_workers=1,
        ) as (server, owner, analyst):
            analyst.submit(query_body(epsilon=0.01, block_size=25))
            queued = analyst.submit(query_body(epsilon=0.01, block_size=25))
            assert analyst.result(queued, timeout=0.01) is None  # still running
            final = analyst.result(queued)  # no timeout: waits to terminal
            assert final is not None


class TestStreamingConformance:
    def test_sse_result_matches_poll(self):
        with server_stack() as (server, owner, analyst):
            query_id = analyst.submit(query_body(epsilon=0.25, seed=99))
            events = list(analyst.events(query_id))
            assert events[-1][0] == "result"
            sse_payload = events[-1][1]
            status, _, poll_payload = analyst.raw_request(
                "GET", f"/v1/queries/{query_id}"
            )
            assert status == 200
            poll_payload.pop("status")
            assert sse_payload == poll_payload
            for event, body in events[:-1]:
                assert event == "status"
                assert body["state"] in ("queued", "running")

    def test_sse_unknown_query_is_404(self):
        with server_stack(register=False) as (server, owner, analyst):
            with pytest.raises(ServerError) as caught:
                list(analyst.events(424242))
            assert caught.value.status == 404
            assert caught.value.code == "unknown_query"


class TestIntrospection:
    def test_healthz_carries_protocol_version(self):
        with server_stack(register=False) as (server, owner, analyst):
            payload = analyst.healthz()
            assert payload == {"ok": True, "protocol_version": 1}

    def test_describe_and_ledger(self):
        with server_stack() as (server, owner, analyst):
            analyst.result(analyst.submit(query_body(epsilon=0.5,
                                                     query_name="audit-me")))
            description = analyst.describe_dataset("census")
            assert description["num_records"] == 400
            assert description["remaining_budget"] == pytest.approx(49.5)
            entries = owner.ledger("census")
            assert entries == [{"query": "audit-me", "epsilon": 0.5}]
            with pytest.raises(ServerError) as caught:
                analyst.ledger("census")
            assert caught.value.code == "forbidden"

    def test_metrics_is_owner_gated(self):
        with server_stack(register=False) as (server, owner, analyst):
            snapshot = owner.metrics()
            assert "counters" in snapshot and "gauges" in snapshot
            with pytest.raises(ServerError) as caught:
                analyst.metrics()
            assert caught.value.code == "forbidden"

    def test_fsck_without_state_dir_is_404(self):
        with server_stack(register=False) as (server, owner, analyst):
            with pytest.raises(ServerError) as caught:
                owner.fsck()
            assert caught.value.status == 404

    def test_fsck_with_state_dir(self, tmp_path):
        service = GuptService(rng=0, state_dir=str(tmp_path))
        server = GuptHttpServer(
            service, admin_token=ADMIN, state_dir=str(tmp_path)
        )
        host, port = server.start()
        try:
            client = GuptClient(host, port)
            client.token = client.enroll("owner", "o", ADMIN)
            client.register_dataset("d", [[1.0], [2.0], [3.0]], total_budget=2.0)
            report = client.fsck()
            assert report["exists"] and not report["torn"]
            assert "d" in report["datasets"]
            assert client.recovered_datasets() == []
            client.close()
        finally:
            server.stop()
            service.close()

    def test_unrouted_path_is_400(self):
        with server_stack(register=False) as (server, owner, analyst):
            status, _, payload = analyst.raw_request("GET", "/v2/elsewhere")
            assert (status, payload["code"]) == (400, "invalid_request")
