"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.table import DataTable


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_table(rng) -> DataTable:
    """200 records, 1 dimension, values in [0, 100]."""
    return DataTable(
        rng.uniform(0.0, 100.0, size=200),
        column_names=["value"],
        input_ranges=[(0.0, 100.0)],
    )


@pytest.fixture
def wide_table(rng) -> DataTable:
    """300 records, 3 dimensions, with input ranges."""
    return DataTable(
        rng.normal(0.0, 1.0, size=(300, 3)),
        column_names=["a", "b", "c"],
        input_ranges=[(-5.0, 5.0)] * 3,
    )
