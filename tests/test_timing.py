"""Unit tests for the timing defense."""

import time

import numpy as np
import pytest

from repro.observability import MetricsRegistry
from repro.runtime.sandbox import InProcessChamber
from repro.runtime.timing import TimingDefense


class TestTimingDefense:
    def test_disabled_by_default(self):
        defense = TimingDefense()
        assert not defense.enabled
        assert defense.pad_to_budget(10.0) == 0.0
        assert not defense.exceeded(1e9)

    def test_exceeded(self):
        defense = TimingDefense(cycle_budget=0.1)
        assert defense.exceeded(0.2)
        assert not defense.exceeded(0.05)

    def test_pad_sleeps_out_remainder(self):
        defense = TimingDefense(cycle_budget=0.05, pad=True)
        started = time.perf_counter()
        slept = defense.pad_to_budget(elapsed=0.0)
        elapsed = time.perf_counter() - started
        assert slept == pytest.approx(0.05, abs=0.01)
        assert elapsed >= 0.045

    def test_pad_noop_when_budget_used(self):
        defense = TimingDefense(cycle_budget=0.05, pad=True)
        assert defense.pad_to_budget(elapsed=0.06) == 0.0

    def test_pad_disabled(self):
        defense = TimingDefense(cycle_budget=0.05, pad=False)
        assert defense.pad_to_budget(elapsed=0.0) == 0.0

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_invalid_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            TimingDefense(cycle_budget=budget)


class TestTimingDefenseRegressions:
    """End-to-end §6.2 semantics through a chamber, plus telemetry."""

    BLOCK = np.zeros((5, 1))
    FALLBACK = np.array([42.0])

    def test_pad_enforces_wall_clock_floor_on_fast_blocks(self):
        # A near-instant program must still be observed taking (at
        # least) the full cycle budget when padding is on.
        chamber = InProcessChamber(
            timing=TimingDefense(cycle_budget=0.08, pad=True),
            metrics=MetricsRegistry(),
        )
        started = time.perf_counter()
        execution = chamber.run_block(
            lambda block: 1.0, self.BLOCK, 1, self.FALLBACK
        )
        observed = time.perf_counter() - started
        assert execution.succeeded
        assert observed >= 0.075

    def test_kill_and_substitute_yields_data_independent_fallback(self):
        def hangs(block):
            time.sleep(0.5)
            return float(block.sum())

        chamber = InProcessChamber(
            timing=TimingDefense(cycle_budget=0.03, pad=False),
            metrics=MetricsRegistry(),
        )
        execution = chamber.run_block(hangs, self.BLOCK, 1, self.FALLBACK)
        assert execution.killed
        assert not execution.succeeded
        # The substituted output is exactly the constant fallback — it
        # carries no bit of the block's data.
        assert execution.output.tolist() == [42.0]

    def test_kill_metric_recorded(self):
        metrics = MetricsRegistry()
        chamber = InProcessChamber(
            timing=TimingDefense(cycle_budget=0.02, pad=False), metrics=metrics
        )

        def hangs(block):
            time.sleep(0.3)
            return 1.0

        chamber.run_block(hangs, self.BLOCK, 1, self.FALLBACK)
        assert metrics.counter("chamber.kills").value == 1

    def test_pad_metric_recorded(self):
        metrics = MetricsRegistry()
        chamber = InProcessChamber(
            timing=TimingDefense(cycle_budget=0.05, pad=True), metrics=metrics
        )
        chamber.run_block(lambda block: 1.0, self.BLOCK, 1, self.FALLBACK)
        summary = metrics.histogram("chamber.pad_seconds").summary()
        assert summary["count"] == 1
        assert summary["last"] == pytest.approx(0.05, abs=0.02)
        assert metrics.counter("chamber.kills").value == 0
