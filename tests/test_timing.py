"""Unit tests for the timing defense."""

import time

import pytest

from repro.runtime.timing import TimingDefense


class TestTimingDefense:
    def test_disabled_by_default(self):
        defense = TimingDefense()
        assert not defense.enabled
        assert defense.pad_to_budget(10.0) == 0.0
        assert not defense.exceeded(1e9)

    def test_exceeded(self):
        defense = TimingDefense(cycle_budget=0.1)
        assert defense.exceeded(0.2)
        assert not defense.exceeded(0.05)

    def test_pad_sleeps_out_remainder(self):
        defense = TimingDefense(cycle_budget=0.05, pad=True)
        started = time.perf_counter()
        slept = defense.pad_to_budget(elapsed=0.0)
        elapsed = time.perf_counter() - started
        assert slept == pytest.approx(0.05, abs=0.01)
        assert elapsed >= 0.045

    def test_pad_noop_when_budget_used(self):
        defense = TimingDefense(cycle_budget=0.05, pad=True)
        assert defense.pad_to_budget(elapsed=0.06) == 0.0

    def test_pad_disabled(self):
        defense = TimingDefense(cycle_budget=0.05, pad=False)
        assert defense.pad_to_budget(elapsed=0.0) == 0.0

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_invalid_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            TimingDefense(cycle_budget=budget)
