"""Unit tests for the two-phase sample-and-aggregate engine."""

import numpy as np
import pytest

from repro.core.aggregation import OutputRange
from repro.core.sample_aggregate import SampleAggregateEngine
from repro.exceptions import ComputationError
from repro.estimators.statistics import Mean


@pytest.fixture
def engine():
    return SampleAggregateEngine()


@pytest.fixture
def data(rng):
    return rng.uniform(0.0, 100.0, size=(400, 1))


class TestSample:
    def test_output_matrix_shape(self, engine, data):
        sampled = engine.sample(data, Mean(), 1, [50.0], block_size=40, rng=0)
        assert sampled.outputs.shape == (10, 1)
        assert sampled.num_blocks == 10

    def test_block_outputs_are_block_means(self, engine, data):
        sampled = engine.sample(data, Mean(), 1, [50.0], block_size=40, rng=0)
        for idx, row in zip(sampled.plan.blocks, sampled.outputs):
            assert row[0] == pytest.approx(data[idx].mean())

    def test_failed_blocks_counted_and_fall_back(self, engine, data):
        calls = {"n": 0}

        def flaky(block):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise RuntimeError("boom")
            return float(np.mean(block))

        sampled = engine.sample(data, flaky, 1, [42.0], block_size=40, rng=0)
        assert sampled.failed_blocks == 5
        failed_rows = np.isclose(sampled.outputs[:, 0], 42.0)
        assert failed_rows.sum() == 5

    def test_all_blocks_failing_raises(self, engine, data):
        def broken(block):
            raise RuntimeError("always")

        with pytest.raises(ComputationError):
            engine.sample(data, broken, 1, [0.0], block_size=40)

    def test_wrong_output_dimension_falls_back(self, engine, data):
        def two_values(block):
            return [1.0, 2.0]

        with pytest.raises(ComputationError):
            engine.sample(data, two_values, 1, [0.0], block_size=40)

    def test_1d_data_promoted(self, engine):
        sampled = engine.sample(np.arange(100.0), Mean(), 1, [0.0], block_size=10, rng=0)
        assert sampled.outputs.shape == (10, 1)

    def test_3d_data_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.sample(np.zeros((2, 2, 2)), Mean(), 1, [0.0])


class TestCanonicalOrder:
    def test_hook_applied_to_successful_blocks(self, data):
        engine = SampleAggregateEngine(canonical_order=lambda v: np.sort(v))

        def reversed_pair(block):
            m = float(np.mean(block))
            return [m + 1.0, m - 1.0]

        sampled = engine.sample(data, reversed_pair, 2, [0.0, 0.0], block_size=40, rng=0)
        assert np.all(sampled.outputs[:, 0] <= sampled.outputs[:, 1])

    def test_hook_not_applied_to_fallback(self, data):
        engine = SampleAggregateEngine(canonical_order=lambda v: np.sort(v))

        def broken_sometimes(block):
            if float(np.mean(block)) > 50:
                raise RuntimeError
            return [9.0, 1.0]

        sampled = engine.sample(
            data, broken_sometimes, 2, [5.0, 3.0], block_size=40, rng=0
        )
        fallback_rows = np.isclose(sampled.outputs[:, 0], 5.0)
        # Fallback rows keep their (unsorted) constant exactly.
        assert np.all(sampled.outputs[fallback_rows, 1] == 3.0)


class TestAggregatePhase:
    def test_high_epsilon_recovers_mean(self, engine, data):
        result = engine.run(
            data, Mean(), epsilon=1e9, output_ranges=(0.0, 100.0), block_size=40, rng=0
        )
        assert result.scalar() == pytest.approx(data.mean(), abs=0.01)

    def test_metadata_propagated(self, engine, data):
        result = engine.run(
            data, Mean(), epsilon=2.0, output_ranges=(0.0, 100.0),
            block_size=40, resampling_factor=2, rng=0,
        )
        assert result.epsilon == 2.0
        assert result.block_size == 40
        assert result.resampling_factor == 2
        assert result.num_blocks == 20
        assert result.output_ranges == (OutputRange(0.0, 100.0),)

    def test_reaggregating_same_sample(self, engine, data):
        sampled = engine.sample(data, Mean(), 1, [50.0], block_size=40, rng=0)
        first = engine.aggregate(sampled, 1e9, (0.0, 100.0), rng=1)
        second = engine.aggregate(sampled, 1e9, (0.0, 100.0), rng=2)
        assert first.scalar() == pytest.approx(second.scalar(), abs=0.01)

    def test_noise_scales_reflect_resampling_claim1(self, engine, data):
        base = engine.run(
            data, Mean(), epsilon=1.0, output_ranges=(0.0, 100.0),
            block_size=40, resampling_factor=1, rng=0,
        )
        resampled = engine.run(
            data, Mean(), epsilon=1.0, output_ranges=(0.0, 100.0),
            block_size=40, resampling_factor=4, rng=0,
        )
        assert resampled.noise_scales[0] == pytest.approx(base.noise_scales[0])

    def test_resampling_reduces_variance(self, engine):
        rng = np.random.default_rng(0)
        data = rng.lognormal(0, 1.5, size=(600, 1))
        truth = data.mean()

        def spread(gamma: int) -> float:
            estimates = [
                engine.run(
                    data, Mean(), epsilon=1e9, output_ranges=(0.0, 50.0),
                    block_size=150, resampling_factor=gamma, rng=rng,
                ).scalar()
                for _ in range(40)
            ]
            return float(np.std(np.array(estimates) - truth))

        # With noise off, all remaining variance is partitioning variance;
        # gamma=6 averages 6x more blocks and must cut it down.
        assert spread(6) < spread(1)

    def test_default_block_size_used_when_none(self, engine, data):
        result = engine.run(data, Mean(), epsilon=1.0, output_ranges=(0.0, 100.0), rng=0)
        assert result.block_size == round(400**0.6)
