"""Unit tests for phase tracing."""

import time

import pytest

from repro.observability import MetricsRegistry, Span, SpanRecord, Tracer


class TestTracer:
    def test_records_in_completion_order(self):
        tracer = Tracer()
        tracer.record(SpanRecord("a", 0.1))
        tracer.record(SpanRecord("b", 0.2))
        assert [s.name for s in tracer.spans()] == ["a", "b"]

    def test_filter_by_name(self):
        tracer = Tracer()
        tracer.record(SpanRecord("a", 0.1))
        tracer.record(SpanRecord("b", 0.2))
        tracer.record(SpanRecord("a", 0.3))
        assert [s.seconds for s in tracer.spans("a")] == [0.1, 0.3]

    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(max_spans=3)
        for i in range(6):
            tracer.record(SpanRecord(f"s{i}", float(i)))
        assert [s.name for s in tracer.spans()] == ["s3", "s4", "s5"]
        assert len(tracer) == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_reset(self):
        tracer = Tracer()
        tracer.record(SpanRecord("a", 0.1))
        tracer.reset()
        assert tracer.spans() == []


class TestSpan:
    def test_span_measures_elapsed_time(self):
        tracer = Tracer()
        with Span("work", tracer=tracer) as span:
            time.sleep(0.02)
        assert span.seconds >= 0.015
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.seconds == span.seconds

    def test_span_records_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with Span("work", tracer=tracer):
                raise RuntimeError("boom")
        assert len(tracer.spans()) == 1

    def test_registry_span_feeds_histogram_and_tracer(self):
        registry = MetricsRegistry()
        with registry.span("phase", dataset="d"):
            pass
        (record,) = registry.tracer.spans()
        assert record.name == "phase"
        assert dict(record.labels) == {"dataset": "d"}
        summary = registry.histogram("phase.seconds", dataset="d").summary()
        assert summary["count"] == 1
        assert summary["last"] == pytest.approx(record.seconds)

    def test_nested_spans_record_inner_first(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        names = [s.name for s in registry.tracer.spans()]
        assert names == ["inner", "outer"]

    def test_span_record_as_dict(self):
        record = SpanRecord("p", 0.5, (("k", "v"),))
        assert record.as_dict() == {"name": "p", "seconds": 0.5, "labels": {"k": "v"}}
