"""End-to-end observability: telemetry coverage and release-safety.

Two questions, answered against the real request path rather than the
registry in isolation:

1. after one ``GuptRuntime.run`` / ``GuptService.submit``, does the
   snapshot actually report phase timings, block success/fallback/kill
   counts and per-dataset budget burn-down?
2. does any metric or span payload carry a value derived from raw block
   outputs?  The dataset here lives entirely in a sentinel band
   ([7000, 7400]) far from every legitimate telemetry magnitude, so a
   single numeric walk over the snapshot can prove the invariant.
"""

import json

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.runtime.computation_manager import ComputationManager
from repro.runtime.service import ANALYST, OWNER, GuptService, QueryRequest

# Every record — hence every block output and every released value —
# lies in this band; no release-safe metric (epsilons, counts, block
# geometry, seconds) can legitimately reach it.
SENTINEL_LO, SENTINEL_HI = 7000.0, 7400.0


def numeric_leaves(payload) -> list[float]:
    """Every number reachable in a snapshot, labels included."""
    if isinstance(payload, bool):
        return []
    if isinstance(payload, (int, float)):
        return [float(payload)]
    if isinstance(payload, str):
        try:
            return [float(payload)]
        except ValueError:
            return []
    if isinstance(payload, dict):
        return [v for item in payload.items() for x in item for v in numeric_leaves(x)]
    if isinstance(payload, (list, tuple)):
        return [v for item in payload for v in numeric_leaves(item)]
    return []


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def manager(registry, rng):
    manager = DatasetManager(metrics=registry)
    values = rng.uniform(SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=2000)
    manager.register(
        "census",
        DataTable(
            values,
            column_names=["v"],
            input_ranges=[(SENTINEL_LO, SENTINEL_HI)],
        ),
        total_budget=20.0,
    )
    return manager


@pytest.fixture
def runtime(manager, registry):
    return GuptRuntime(manager, rng=7, metrics=registry)


class TestEndToEndTelemetry:
    """One run populates every layer's instruments in one registry."""

    def test_phase_timings_reported(self, runtime, registry):
        runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=2.0
        )
        snapshot = registry.snapshot()
        for phase in (
            "runtime.run",
            "runtime.resolve",
            "runtime.range_estimation",
            "runtime.sample",
            "runtime.aggregate",
        ):
            summary = snapshot["histograms"][f'{phase}.seconds{{dataset="census"}}']
            assert summary["count"] >= 1
            assert summary["sum"] >= 0.0
        span_names = {s["name"] for s in snapshot["spans"]}
        assert "runtime.sample" in span_names
        assert "runtime.run" in span_names

    def test_block_counts_consistent(self, runtime, registry):
        result = runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=2.0
        )
        counters = registry.snapshot()["counters"]
        assert counters["blocks.executed"] == result.num_blocks
        assert (
            counters["blocks.success"] + counters["blocks.fallback"]
            == counters["blocks.executed"]
        )
        assert counters["blocks.fallback"] == result.failed_blocks
        assert counters["blocks.killed"] == 0

    def test_budget_burn_down_reported(self, runtime, manager, registry):
        runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=2.0
        )
        runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=1.5
        )
        gauges = registry.snapshot()["gauges"]
        budget = manager.get("census").budget
        assert gauges['budget.epsilon_spent{dataset="census"}'] == pytest.approx(3.5)
        assert gauges['budget.epsilon_remaining{dataset="census"}'] == pytest.approx(
            budget.remaining
        )
        counters = registry.snapshot()["counters"]
        assert counters['budget.charges{dataset="census"}'] == 2
        assert counters['runtime.queries{dataset="census"}'] == 2

    def test_injected_registry_isolated_from_default(self, runtime, registry):
        from repro.observability import get_registry

        before = json.dumps(get_registry().snapshot(), sort_keys=True)
        runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=1.0
        )
        assert json.dumps(get_registry().snapshot(), sort_keys=True) == before
        assert registry.snapshot()["counters"]['runtime.queries{dataset="census"}'] == 1


class TestReleaseSafety:
    """No metric or span value derives from raw block outputs."""

    def test_no_block_output_value_appears_in_snapshot(
        self, runtime, manager, registry
    ):
        observed_outputs = []

        def program(block):
            out = float(np.mean(block))
            observed_outputs.append(out)
            return out

        result = runtime.run(
            "census", program, TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=2.0
        )
        assert observed_outputs, "program never ran"
        assert min(observed_outputs) > SENTINEL_LO
        assert SENTINEL_LO < result.scalar() < SENTINEL_HI

        leaves = numeric_leaves(registry.snapshot())
        assert leaves, "snapshot unexpectedly empty"
        # Nothing in telemetry approaches the sentinel band — neither a
        # block output, a record, nor the released value itself.
        assert max(abs(v) for v in leaves) < SENTINEL_LO / 2
        for leaf in leaves:
            for output in observed_outputs:
                assert leaf != pytest.approx(output, abs=1e-6)

    def test_span_payloads_carry_no_value_fields(self, runtime, registry):
        runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=1.0
        )
        for span in registry.snapshot()["spans"]:
            # A span is exactly {name, seconds, labels} — no attribute
            # bag exists to smuggle outputs through.
            assert set(span) == {"name", "seconds", "labels"}
            assert set(span["labels"]) <= {"dataset"}

    def test_rendered_json_is_release_safe(self, runtime, registry):
        runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=1.0
        )
        parsed = json.loads(registry.to_json())
        # The exported document has exactly the four known sections, and
        # the numeric walk over the parsed form stays out of the
        # sentinel band — the JSON path leaks nothing the snapshot
        # doesn't.
        assert set(parsed) == {"counters", "gauges", "histograms", "spans"}
        leaves = numeric_leaves(parsed)
        assert leaves and max(abs(v) for v in leaves) < SENTINEL_LO / 2


class TestServiceTelemetry:
    """The hosted service owns a registry; per-principal accounting."""

    @pytest.fixture
    def service(self, registry):
        return GuptService(rng=0, metrics=registry)

    def test_per_principal_queries_and_rejections(self, service, registry, rng):
        owner = service.enroll(OWNER, name="hospital")
        analyst = service.enroll(ANALYST, name="uni-lab")
        values = rng.uniform(SENTINEL_LO, SENTINEL_HI, size=1500)
        service.register_dataset(
            owner.token,
            "stays",
            DataTable(values, input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
            total_budget=3.0,
        )
        request = QueryRequest(
            dataset="stays",
            program=Mean(),
            range_strategy=TightRange((SENTINEL_LO, SENTINEL_HI)),
            epsilon=2.0,
        )
        assert service.execute(analyst.token, request).ok
        # Second identical query cannot fit the remaining budget.
        assert not service.execute(analyst.token, request).ok

        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]['service.queries{principal="uni-lab"}'] == 2
        assert snapshot["counters"]['service.rejections{principal="uni-lab"}'] == 1
        assert snapshot["gauges"]['budget.epsilon_remaining{dataset="stays"}'] == (
            pytest.approx(1.0)
        )

    def test_service_snapshot_is_release_safe(self, service, registry, rng):
        owner = service.enroll(OWNER, name="hospital")
        analyst = service.enroll(ANALYST, name="uni-lab")
        values = rng.uniform(SENTINEL_LO, SENTINEL_HI, size=1500)
        service.register_dataset(
            owner.token,
            "stays",
            DataTable(values, input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
            total_budget=5.0,
        )
        request = QueryRequest(
            dataset="stays",
            program=Mean(),
            range_strategy=TightRange((SENTINEL_LO, SENTINEL_HI)),
            epsilon=1.0,
        )
        assert service.execute(analyst.token, request).ok
        leaves = numeric_leaves(service.metrics_snapshot())
        assert max(abs(v) for v in leaves) < SENTINEL_LO / 2


class TestSchedulerTelemetry:
    """The scheduler's telemetry is queue geometry, never query values.

    Same sentinel construction as the other release-safety suites: the
    dataset (and so every block output and every released value) lives
    in [7000, 7400]; after real scheduled traffic — successes, a
    pre-release failure that rolls its reservation back, an admission
    rejection — every ``scheduler.*`` instrument exists and no numeric
    leaf in the snapshot approaches the band.
    """

    @staticmethod
    def _always_fails(block):
        raise RuntimeError("dies in the chamber, pre-release")

    def test_scheduler_metrics_present_and_release_safe(self, registry, rng):
        service = GuptService(
            rng=3, metrics=registry,
            scheduler_workers=2, max_inflight=2, queue_depth=8,
        )
        owner = service.enroll(OWNER, name="hospital")
        analyst = service.enroll(ANALYST, name="uni-lab")
        values = rng.uniform(SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=1500)
        service.register_dataset(
            owner.token,
            "stays",
            DataTable(values, input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
            total_budget=20.0,
        )

        def request(program, name):
            return QueryRequest(
                dataset="stays",
                program=program,
                range_strategy=TightRange((SENTINEL_LO, SENTINEL_HI)),
                epsilon=1.0,
                query_name=name,
                seed=11,
            )

        good = [
            service.submit(analyst.token, request(Mean(), "good-0")),
            service.submit(analyst.token, request(Mean(), "good-1")),
        ]
        # Third concurrent submission breaches max_inflight=2: a
        # structured admission rejection.
        rejected = service.submit(analyst.token, request(Mean(), "over-limit"))
        responses = [service.result(h) for h in good]
        assert all(r.ok for r in responses)
        assert all(SENTINEL_LO < r.value[0] < SENTINEL_HI for r in responses)
        assert not service.result(rejected).ok

        # A program that dies on every block fails before any private
        # release: its reservation rolls back and the response says how
        # much epsilon came back.
        failed = service.result(
            service.submit(analyst.token, request(self._always_fails, "doomed"))
        )
        assert not failed.ok
        assert failed.epsilon_rolled_back == 1.0

        service.close()
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["scheduler.submitted"] == 4
        assert counters["scheduler.admission_rejections"] == 1
        assert counters["scheduler.reservation_rollbacks"] == 1
        assert counters['scheduler.completed{outcome="ok"}'] == 2
        assert counters['scheduler.completed{outcome="rejected"}'] == 1
        assert counters['scheduler.completed{outcome="error"}'] == 1
        assert counters["scheduler.timeout_kills"] == 0
        assert snapshot["gauges"]["scheduler.queue_depth"] == 0
        assert snapshot["gauges"]["scheduler.running"] == 0
        assert snapshot["histograms"]["scheduler.wait_seconds"]["count"] == 3
        assert snapshot["histograms"]["scheduler.run_seconds"]["count"] == 3
        # The single numeric walk: nothing anywhere in the snapshot —
        # scheduler counters, budget gauges, timing histograms, labels —
        # carries a value derived from the sentinel-band outputs.
        leaves = numeric_leaves(snapshot)
        assert leaves and max(abs(v) for v in leaves) < SENTINEL_LO / 2


class TestPoolBackendTelemetry:
    """The worker-pool backend extends the PR 1 release-safety invariant.

    Pool telemetry is pure dispatch metadata — worker counts, batch
    geometry, restart counts, wall-clock dispatch timings.  Running a
    query whose every block output lives in the sentinel band proves
    none of it derives from raw block outputs.
    """

    def test_pool_metrics_present_and_release_safe(self, manager, registry):
        computation = ComputationManager(
            backend="pool", max_workers=2, metrics=registry
        )
        runtime = GuptRuntime(
            manager, computation_manager=computation, rng=7, metrics=registry
        )
        try:
            result = runtime.run(
                "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)), epsilon=2.0
            )
        finally:
            runtime.close()
        assert SENTINEL_LO < result.scalar() < SENTINEL_HI

        snapshot = registry.snapshot()
        # The pool's instruments all exist after one query...
        assert snapshot["gauges"]["pool.workers"] == 2
        assert snapshot["gauges"]["pool.batch_size"] >= 1
        assert snapshot["counters"]["pool.worker_restarts"] == 0
        assert snapshot["histograms"]["pool.dispatch_seconds"]["count"] >= 1
        assert (
            snapshot["histograms"]["blocks.latency_seconds"]["count"]
            == result.num_blocks
        )
        # ...and none of them (nor anything else in the snapshot) comes
        # anywhere near the sentinel band the block outputs live in.
        leaves = numeric_leaves(snapshot)
        assert leaves and max(abs(v) for v in leaves) < SENTINEL_LO / 2


class TestHttpTelemetry:
    """The network tier extends the PR 1 release-safety invariant.

    ``http.*`` instruments are pure transport metadata — request/response
    counts by route template and status, connection gauges, duration
    histograms, auth-failure and backpressure counters.  Driving the
    real server with sentinel-band data over the wire (success, auth
    failure, backpressure rejection, SSE stream) proves none of it
    derives from record values, released values or raw URLs.
    """

    def test_http_metrics_present_and_release_safe(self, registry, rng):
        from repro.server.client import Backpressure, GuptClient
        from repro.server.http import GuptHttpServer

        service = GuptService(
            rng=3, metrics=registry, scheduler_workers=1, max_inflight=1,
        )
        server = GuptHttpServer(service, admin_token="tel-admin", metrics=registry)
        host, port = server.start()
        client = GuptClient(host, port)
        try:
            client.token = client.enroll("owner", "o", "tel-admin")
            # Big enough that the slow query below runs for milliseconds
            # (so the second submit deterministically hits max_inflight)
            # but with block counts well under the sentinel threshold.
            values = rng.uniform(SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=20_000)
            client.register_dataset(
                "census", values.tolist(), total_budget=20.0,
                column_names=["v"], input_ranges=[[SENTINEL_LO, SENTINEL_HI]],
            )
            analyst = GuptClient(host, port)
            analyst.token = analyst.enroll("analyst", "a", "tel-admin")
            body = {
                "dataset": "census",
                "program": {"name": "mean"},
                "range": {"kind": "tight",
                          "ranges": [[SENTINEL_LO, SENTINEL_HI]]},
                "epsilon": 2.0,
            }
            # One successful release (value in the sentinel band) — and a
            # second submission refused by max_inflight=1 while the
            # first's 4000 blocks are still running.
            slow = dict(body, block_size=25, epsilon=0.5)
            first = analyst.submit(slow)
            with pytest.raises(Backpressure):
                analyst.submit(slow)
            released = analyst.result(first)
            assert released.ok
            assert SENTINEL_LO < released.value[0] < SENTINEL_HI

            # An auth failure and an SSE stream touch their instruments.
            status, _, _ = analyst.raw_request("GET", "/v1/datasets", token="bogus")
            assert status == 401
            done = analyst.submit(dict(body, epsilon=0.5))
            events = list(analyst.events(done))
            assert events[-1][0] == "result"
            analyst.close()
        finally:
            client.close()
            server.stop()
            service.close()

        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        # Every http.* instrument exists (materialized at zero on start,
        # so release builds can alert on absence)...
        assert counters["http.connections"] >= 2
        assert counters['http.requests{method="POST",route="/v1/queries"}'] >= 3
        assert counters['http.responses{status="200"}'] >= 2
        assert counters['http.backpressure_rejections{code="max_inflight"}'] == 1
        assert counters["http.auth_failures"] >= 1
        assert counters["http.sse_streams"] == 1
        assert counters['http.sse_events{event="result"}'] == 1
        assert counters["http.protocol_errors"] == 0
        assert snapshot["gauges"]["http.open_connections"] == 0
        route_histogram = snapshot["histograms"][
            'http.request_seconds{route="/v1/queries"}'
        ]
        assert route_histogram["count"] >= 2
        # ...and the single numeric walk: nothing in the snapshot —
        # counts, durations, statuses, route labels — reaches the
        # sentinel band the records and released values live in.
        leaves = numeric_leaves(snapshot)
        assert leaves and max(abs(v) for v in leaves) < SENTINEL_LO / 2

    def test_http_metrics_materialized_before_traffic(self, registry):
        from repro.server.http import GuptHttpServer

        service = GuptService(rng=0, metrics=registry)
        server = GuptHttpServer(service, admin_token="x", metrics=registry)
        try:
            counters = registry.snapshot()["counters"]
            for name in (
                "http.connections", "http.requests", "http.responses",
                "http.backpressure_rejections", "http.auth_failures",
                "http.sse_streams", "http.sse_events", "http.protocol_errors",
            ):
                assert counters[name] == 0
            assert registry.snapshot()["gauges"]["http.open_connections"] == 0
        finally:
            service.close()
