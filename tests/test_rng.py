"""Unit tests for randomness plumbing."""

import numpy as np
import pytest

from repro.mechanisms.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = as_generator(5).uniform(size=3)
        b = as_generator(5).uniform(size=3)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_numpy_integer_accepted(self):
        assert isinstance(as_generator(np.int64(3)), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_different_seeds_differ(self):
        a = as_generator(1).uniform(size=5)
        b = as_generator(2).uniform(size=5)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_count(self):
        children = spawn(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        a, b = spawn(0, 2)
        assert not np.array_equal(a.uniform(size=10), b.uniform(size=10))

    def test_deterministic_given_seed(self):
        first = [g.uniform() for g in spawn(9, 3)]
        second = [g.uniform() for g in spawn(9, 3)]
        assert first == second

    def test_zero_count(self):
        assert spawn(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)
