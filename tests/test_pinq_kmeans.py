"""Unit tests for PINQ k-means (the Figure 5 baseline)."""

import numpy as np
import pytest

from repro.baselines.pinq.kmeans import pinq_kmeans
from repro.estimators.kmeans import intra_cluster_variance


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [8.0, 8.0]])
    assignment = rng.integers(0, 2, size=800)
    return centers[assignment] + rng.normal(0, 0.3, size=(800, 2))


class TestPinqKMeans:
    def test_spends_at_most_the_budget(self, blobs):
        result = pinq_kmeans(blobs, 2, iterations=10, epsilon=2.0, bounds=(-10, 10), rng=0)
        assert result.epsilon_spent <= 2.0 + 1e-9

    def test_centers_within_bounds(self, blobs):
        result = pinq_kmeans(blobs, 2, iterations=5, epsilon=2.0, bounds=(-10, 10), rng=0)
        assert np.all(result.centers >= -10.0)
        assert np.all(result.centers <= 10.0)

    def test_finds_blobs_with_generous_budget(self, blobs):
        result = pinq_kmeans(blobs, 2, iterations=5, epsilon=50.0, bounds=(-10, 10), rng=0)
        icv = intra_cluster_variance(blobs, result.centers)
        baseline = intra_cluster_variance(
            blobs, np.array([[0.0, 0.0], [8.0, 8.0]])
        )
        assert icv < 3 * baseline

    def test_more_iterations_degrade_quality(self, blobs):
        # The Figure 5 effect: same total budget, more iterations, each
        # one noisier.
        rng = np.random.default_rng(1)
        def avg_icv(iterations):
            values = []
            for seed in range(4):
                result = pinq_kmeans(
                    blobs, 2, iterations=iterations, epsilon=1.0,
                    bounds=(-10, 10), rng=rng, init_seed=seed,
                )
                values.append(intra_cluster_variance(blobs, result.centers))
            return np.mean(values)

        assert avg_icv(50) > avg_icv(2)

    def test_invalid_iterations_rejected(self, blobs):
        with pytest.raises(ValueError):
            pinq_kmeans(blobs, 2, iterations=0, epsilon=1.0, bounds=(-10, 10))

    def test_1d_data_supported(self, rng):
        data = np.concatenate([rng.normal(0, 0.1, 200), rng.normal(5, 0.1, 200)])
        result = pinq_kmeans(data, 2, iterations=3, epsilon=20.0, bounds=(-2, 7), rng=0)
        assert result.centers.shape == (2, 1)
