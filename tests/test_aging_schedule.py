"""Unit tests for timestamp-based aging (split_by_age)."""

import numpy as np
import pytest

from repro.core.aging import split_by_age
from repro.datasets.table import DataTable
from repro.exceptions import GuptError


@pytest.fixture
def table():
    return DataTable(np.arange(10.0), column_names=["v"])


class TestSplitByAge:
    def test_partition_by_cutoff(self, table):
        stamps = np.arange(10.0)  # record i created at time i
        aged, live = split_by_age(table, stamps, cutoff=4.0)
        assert aged.num_records == 4
        assert live.num_records == 6
        assert set(aged.values.ravel()) == {0.0, 1.0, 2.0, 3.0}

    def test_boundary_records_stay_live(self, table):
        stamps = np.full(10, 5.0)
        aged, live = split_by_age(table, stamps, cutoff=5.0)
        assert aged is None
        assert live.num_records == 10

    def test_all_aged(self, table):
        aged, live = split_by_age(table, np.zeros(10), cutoff=1.0)
        assert live is None
        assert aged.num_records == 10

    def test_metadata_preserved(self, table):
        aged, _ = split_by_age(table, np.arange(10.0), cutoff=3.0)
        assert aged.column_names == ("v",)

    def test_wrong_timestamp_count_rejected(self, table):
        with pytest.raises(GuptError):
            split_by_age(table, np.zeros(3), cutoff=1.0)

    def test_manager_integration(self, table):
        """The timestamp split feeds register(aged_table=...) directly."""
        from repro.accounting.manager import DatasetManager

        aged, live = split_by_age(table, np.arange(10.0), cutoff=3.0)
        manager = DatasetManager()
        registered = manager.register(
            "events", live, total_budget=1.0, aged_table=aged
        )
        assert registered.aged.num_records == 3
        assert registered.table.num_records == 7
