"""Unit tests for the exponential mechanism."""

import numpy as np
import pytest

from repro.exceptions import InvalidPrivacyParameter
from repro.mechanisms.exponential import ExponentialMechanism


class TestProbabilities:
    def test_sums_to_one(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([0.0, 1.0, 2.0])
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_in_utility(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([0.0, 1.0, 2.0])
        assert probs[0] < probs[1] < probs[2]

    def test_uniform_for_equal_utilities(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([3.0, 3.0, 3.0, 3.0])
        assert np.allclose(probs, 0.25)

    def test_ratio_matches_formula(self):
        mech = ExponentialMechanism(epsilon=2.0, utility_sensitivity=1.0)
        probs = mech.probabilities([0.0, 1.0])
        # p1/p0 = exp(eps * (u1-u0) / (2*du)) = exp(1)
        assert probs[1] / probs[0] == pytest.approx(np.e)

    def test_weights_scale_probabilities(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([0.0, 0.0], weights=[1.0, 3.0])
        assert probs[1] / probs[0] == pytest.approx(3.0)

    def test_zero_weight_candidate_never_chosen(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([10.0, 0.0], weights=[0.0, 1.0])
        assert probs[0] == 0.0

    def test_all_zero_weights_fall_back_to_best_utility(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([1.0, 5.0, 5.0], weights=[0.0, 0.0, 0.0])
        assert probs[0] == 0.0
        assert probs[1] == probs[2] == pytest.approx(0.5)

    def test_extreme_utilities_are_stable(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.probabilities([1e6, 1e6 - 1.0])
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)

    def test_empty_utilities_rejected(self):
        mech = ExponentialMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mech.probabilities([])

    def test_mismatched_weights_rejected(self):
        mech = ExponentialMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mech.probabilities([1.0, 2.0], weights=[1.0])

    def test_negative_weights_rejected(self):
        mech = ExponentialMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mech.probabilities([1.0, 2.0], weights=[1.0, -1.0])


class TestSelection:
    def test_select_index_in_range(self):
        mech = ExponentialMechanism(epsilon=1.0)
        index = mech.select_index([0.0, 1.0, 2.0], rng=0)
        assert index in (0, 1, 2)

    def test_select_returns_candidate(self):
        mech = ExponentialMechanism(epsilon=1.0)
        chosen = mech.select(["a", "b", "c"], [0.0, 0.0, 100.0], rng=0)
        assert chosen == "c"

    def test_select_mismatched_lengths_rejected(self):
        mech = ExponentialMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mech.select(["a"], [0.0, 1.0])

    def test_high_epsilon_concentrates_on_best(self):
        mech = ExponentialMechanism(epsilon=50.0)
        rng = np.random.default_rng(1)
        picks = [mech.select_index([0.0, 1.0, 5.0], rng=rng) for _ in range(200)]
        assert np.mean(np.array(picks) == 2) > 0.99

    def test_low_epsilon_approaches_uniform(self):
        mech = ExponentialMechanism(epsilon=1e-6)
        probs = mech.probabilities([0.0, 1.0, 5.0])
        assert np.allclose(probs, 1 / 3, atol=1e-5)

    def test_empirical_frequencies_match_probabilities(self):
        mech = ExponentialMechanism(epsilon=2.0)
        utilities = [0.0, 1.0, 2.0]
        probs = mech.probabilities(utilities)
        rng = np.random.default_rng(2)
        picks = np.array([mech.select_index(utilities, rng=rng) for _ in range(20_000)])
        freq = np.bincount(picks, minlength=3) / picks.size
        assert np.allclose(freq, probs, atol=0.02)


class TestValidation:
    @pytest.mark.parametrize("epsilon", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(InvalidPrivacyParameter):
            ExponentialMechanism(epsilon=epsilon)

    @pytest.mark.parametrize("du", [0.0, -1.0, float("nan")])
    def test_invalid_sensitivity(self, du):
        with pytest.raises(InvalidPrivacyParameter):
            ExponentialMechanism(epsilon=1.0, utility_sensitivity=du)
