"""Unit tests for the streaming (windowed) GUPT extension."""

import numpy as np
import pytest

from repro.core.range_estimation import TightRange
from repro.estimators.statistics import Mean
from repro.exceptions import GuptError, PrivacyBudgetExhausted
from repro.streaming import StreamingGupt, WindowConfig


def fill(stream, epochs, per_epoch=200, center=10.0, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    for _ in range(epochs):
        stream.ingest(rng.normal(center, 1.0, size=per_epoch).clip(0, 20))
        stream.advance()


class TestWindowConfig:
    def test_defaults_valid(self):
        WindowConfig()

    @pytest.mark.parametrize("kwargs", [
        {"window_epochs": 0},
        {"window_epochs": 4, "aging_epochs": 2},
        {"epsilon_per_epoch": 0.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(GuptError):
            WindowConfig(**kwargs)


class TestIngestAndWindow:
    def test_window_includes_recent_epochs_only(self):
        stream = StreamingGupt(WindowConfig(window_epochs=2, aging_epochs=5))
        stream.ingest(np.full(10, 1.0))
        stream.advance()
        stream.ingest(np.full(10, 2.0))
        stream.advance()
        stream.ingest(np.full(10, 3.0))
        # Window = current (3.0) + last 2 closed epochs... window_epochs=2
        # keeps epochs with index > current-2, i.e. epochs 1 and 2.
        window = stream.window_values().ravel()
        assert set(window) == {2.0, 3.0}

    def test_empty_window_rejected(self):
        stream = StreamingGupt()
        with pytest.raises(GuptError):
            stream.window_values()

    def test_epoch_counter(self):
        stream = StreamingGupt()
        assert stream.epoch == 0
        stream.advance()
        assert stream.epoch == 1

    @pytest.mark.parametrize("bad", [np.empty((0, 1)), np.array([[np.nan]])])
    def test_invalid_ingest_rejected(self, bad):
        with pytest.raises(GuptError):
            StreamingGupt().ingest(bad)


class TestAging:
    def test_old_epochs_join_aged_pool(self):
        config = WindowConfig(window_epochs=1, aging_epochs=2)
        stream = StreamingGupt(config)
        stream.ingest(np.full(5, 1.0))
        stream.advance()          # epoch 0 closed
        assert stream.aged_values() is None
        stream.advance()          # epoch 1 closed (empty)
        stream.advance()          # epoch 0 now older than aging horizon
        aged = stream.aged_values()
        assert aged is not None
        assert set(aged.ravel()) == {1.0}

    def test_aged_pool_grows(self):
        config = WindowConfig(window_epochs=1, aging_epochs=1)
        stream = StreamingGupt(config)
        for value in (1.0, 2.0, 3.0):
            stream.ingest(np.full(5, value))
            stream.advance()
        stream.advance()
        aged = stream.aged_values()
        assert {1.0, 2.0} <= set(aged.ravel())


class TestQuery:
    def test_query_estimates_window_mean(self):
        stream = StreamingGupt(WindowConfig(epsilon_per_epoch=100.0), rng=0)
        fill(stream, epochs=3)
        result = stream.query(Mean(), TightRange((0.0, 20.0)), epsilon=50.0)
        assert result.scalar() == pytest.approx(10.0, abs=1.0)

    def test_query_charges_every_live_epoch(self):
        stream = StreamingGupt(WindowConfig(window_epochs=3, epsilon_per_epoch=5.0), rng=0)
        fill(stream, epochs=2)
        stream.ingest(np.full(50, 10.0))
        stream.query(Mean(), TightRange((0.0, 20.0)), epsilon=1.0)
        remaining = stream.remaining_budgets()
        assert all(value == pytest.approx(4.0) for value in remaining.values())

    def test_exhausted_epoch_blocks_the_query_atomically(self):
        stream = StreamingGupt(WindowConfig(window_epochs=3, epsilon_per_epoch=2.0), rng=0)
        fill(stream, epochs=2)
        stream.ingest(np.full(50, 10.0))
        stream.query(Mean(), TightRange((0.0, 20.0)), epsilon=1.5)
        before = stream.remaining_budgets()
        with pytest.raises(PrivacyBudgetExhausted):
            stream.query(Mean(), TightRange((0.0, 20.0)), epsilon=1.0)
        assert stream.remaining_budgets() == before

    def test_retired_epochs_budget_no_longer_charged(self):
        config = WindowConfig(window_epochs=1, aging_epochs=3, epsilon_per_epoch=2.0)
        stream = StreamingGupt(config, rng=0)
        stream.ingest(np.full(60, 5.0))
        stream.advance()
        stream.ingest(np.full(60, 7.0))
        # Window covers only the newest closed/current data; epoch 0 is
        # retired and must not be charged.
        stream.query(Mean(), TightRange((0.0, 20.0)), epsilon=2.0)
        # A second full-budget query still works because epoch 0's budget
        # was untouched and epoch 1... no: epoch 1 was charged. Verify by
        # a refused second query instead.
        with pytest.raises(PrivacyBudgetExhausted):
            stream.query(Mean(), TightRange((0.0, 20.0)), epsilon=0.5)

    def test_invalid_epsilon_rejected(self):
        stream = StreamingGupt(rng=0)
        stream.ingest(np.full(10, 1.0))
        with pytest.raises(GuptError):
            stream.query(Mean(), TightRange((0.0, 2.0)), epsilon=0.0)

    def test_fresh_data_restores_queryability(self):
        config = WindowConfig(window_epochs=1, epsilon_per_epoch=1.0)
        stream = StreamingGupt(config, rng=0)
        stream.ingest(np.full(60, 5.0))
        stream.query(Mean(), TightRange((0.0, 10.0)), epsilon=1.0)
        with pytest.raises(PrivacyBudgetExhausted):
            stream.query(Mean(), TightRange((0.0, 10.0)), epsilon=0.5)
        # New epoch, new data, new budget.
        stream.advance()
        stream.ingest(np.full(60, 6.0))
        result = stream.query(Mean(), TightRange((0.0, 10.0)), epsilon=1.0)
        assert 0.0 <= result.scalar() <= 10.0
