"""Privacy boundary of the shard IPC: partials only, never records.

The sharded backend's design claim is that after a dataset is pushed
into shared memory (coordinator -> worker, at registration), the only
payload that ever crosses a process boundary is the per-shard block
summary: a clamped ``(l_s, p)`` output matrix, its success mask, and
public scalars.  These tests observe every worker -> coordinator
message through the backend's ``message_observer`` hook and prove it
structurally — following the sentinel-band technique of
``tests/test_observability.py``: all records live in [7000, 7400], so
any unclamped record magnitude in a place it shouldn't be is
detectable, and the *shape* allowlist rules out smuggling the raw
record slab regardless of its values.
"""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.blocks import shard_block_counts
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.runtime.computation_manager import ComputationManager
from repro.runtime.shard import ShardedExecutionBackend

from tests.test_observability import SENTINEL_LO, SENTINEL_HI, numeric_leaves

SHARDS = 4
WORKERS = 2
BLOCK_SIZE = 100
NUM_RECORDS = 2_000
EPSILON = 0.5

#: Worker -> coordinator message kinds the protocol may ever use.
ALLOWED_KINDS = {"partial", "query-done", "partial-missing"}


@pytest.fixture
def sentinel_manager(rng):
    manager = DatasetManager()
    values = rng.uniform(SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=NUM_RECORDS)
    manager.register(
        "census",
        DataTable(
            values,
            column_names=["v"],
            input_ranges=[(SENTINEL_LO, SENTINEL_HI)],
        ),
        total_budget=20.0,
    )
    return manager


def _run_observed(manager, metrics, declared_range):
    """One seeded sharded query, capturing every boundary message."""
    messages = []
    backend = ShardedExecutionBackend(
        shards=SHARDS, workers=WORKERS, metrics=metrics,
        message_observer=messages.append,
    )
    computation = ComputationManager(
        backend="sharded", shards=SHARDS, max_workers=WORKERS,
        sharded=backend, metrics=metrics,
    )
    runtime = GuptRuntime(
        manager, computation_manager=computation, rng=7, metrics=metrics
    )
    try:
        result = runtime.run(
            "census", Mean(), TightRange(declared_range),
            epsilon=EPSILON, block_size=BLOCK_SIZE, rng=11,
        )
    finally:
        runtime.close()
    assert metrics.snapshot()["counters"]["shard.queries"] == 1
    return result, messages


class TestBoundarySchema:
    def test_only_allowlisted_message_shapes_cross(self, sentinel_manager):
        """Every boundary message is one of the three protocol kinds,
        with exact arity — and every partial is a block-summary matrix
        whose row count matches the public shard geometry, far too small
        to carry the record slab."""
        metrics = MetricsRegistry()
        _, messages = _run_observed(
            sentinel_manager, metrics, (SENTINEL_LO, SENTINEL_HI)
        )
        assert messages, "observer saw no boundary traffic"
        counts = shard_block_counts(NUM_RECORDS, BLOCK_SIZE, 1, SHARDS)

        partial_shards = []
        for message in messages:
            kind = message[0]
            assert kind in ALLOWED_KINDS, message
            if kind == "query-done":
                assert len(message) == 2
                continue
            if kind == "partial-missing":
                assert len(message) == 3
                continue
            _, qid, shard, outputs, succeeded, elapsed = message
            partial_shards.append(int(shard))
            outputs = np.asarray(outputs)
            assert outputs.shape == (int(counts[shard]), 1)
            assert np.asarray(succeeded).shape == (int(counts[shard]),)
            assert isinstance(float(elapsed), float)
            # The summary payload is orders of magnitude smaller than
            # the shard's record slice: nothing raw fits through.
            assert outputs.size < NUM_RECORDS // SHARDS

        assert sorted(partial_shards) == list(range(SHARDS))

    def test_partials_are_clamped_before_crossing(self, sentinel_manager):
        """Declared output ranges are applied *inside* the worker: with
        a declared range far below the sentinel band, no number in the
        sentinel band ever crosses the boundary — even though every
        block's true mean lies in it."""
        metrics = MetricsRegistry()
        result, messages = _run_observed(sentinel_manager, metrics, (0.0, 100.0))
        partials = [m for m in messages if m[0] == "partial"]
        assert partials
        for message in partials:
            leaves = numeric_leaves(np.asarray(message[3]).tolist())
            assert leaves, "partial carried no outputs"
            assert all(v <= 100.0 for v in leaves), message
            assert not any(SENTINEL_LO <= v <= SENTINEL_HI for v in leaves)
        # Clamping is idempotent, so narrowing the boundary early does
        # not move the release: the aggregate stays in the clamp range.
        assert all(0.0 <= float(v) <= 100.0 + 10.0 / EPSILON for v in result.value)

    def test_released_bits_match_serial_despite_worker_clamp(self, sentinel_manager):
        """The clamp-at-the-boundary optimization never moves bits."""
        metrics = MetricsRegistry()
        result, _ = _run_observed(sentinel_manager, metrics, (0.0, 100.0))

        serial_manager = DatasetManager()
        values = np.random.default_rng(12345).uniform(
            SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=NUM_RECORDS
        )
        serial_manager.register(
            "census",
            DataTable(values, column_names=["v"],
                      input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
            total_budget=20.0,
        )
        runtime = GuptRuntime(
            serial_manager, rng=7, backend="serial", shards=SHARDS
        )
        try:
            serial = runtime.run(
                "census", Mean(), TightRange((0.0, 100.0)),
                epsilon=EPSILON, block_size=BLOCK_SIZE, rng=11,
            )
        finally:
            runtime.close()
        assert tuple(result.value) == tuple(serial.value)


class TestTelemetryStaysReleaseSafe:
    def test_shard_metrics_never_touch_the_sentinel_band(self, sentinel_manager):
        """The observability invariant extends to ``shard.*``: geometry,
        counts and seconds only — no block outputs, no records."""
        metrics = MetricsRegistry()
        _run_observed(sentinel_manager, metrics, (SENTINEL_LO, SENTINEL_HI))
        snapshot = metrics.snapshot()
        shard_keys = [
            k for section in ("counters", "gauges", "histograms")
            for k in snapshot[section] if k.startswith("shard.")
        ]
        assert shard_keys, "sharded run produced no shard telemetry"
        offenders = [
            v for v in numeric_leaves(snapshot)
            if SENTINEL_LO <= v <= SENTINEL_HI
        ]
        assert not offenders, offenders
