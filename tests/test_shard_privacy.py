"""Privacy boundary of the shard IPC: partials only, never records.

The sharded backend's design claim is that after a dataset is pushed
into shared memory (coordinator -> worker, at registration), the only
payload that ever crosses a process boundary is the per-shard block
summary: a clamped ``(l_s, p)`` output matrix, its success mask, and
public scalars.  These tests observe every worker -> coordinator
message through the backend's ``message_observer`` hook and prove it
structurally — following the sentinel-band technique of
``tests/test_observability.py``: all records live in [7000, 7400], so
any unclamped record magnitude in a place it shouldn't be is
detectable, and the *shape* allowlist rules out smuggling the raw
record slab regardless of its values.
"""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.blocks import shard_block_counts
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.runtime.computation_manager import ComputationManager
from repro.runtime.shard import ShardedExecutionBackend

from tests.test_observability import SENTINEL_LO, SENTINEL_HI, numeric_leaves

SHARDS = 4
WORKERS = 2
BLOCK_SIZE = 100
NUM_RECORDS = 2_000
EPSILON = 0.5

#: Worker -> coordinator message kinds the protocol may ever use.
ALLOWED_KINDS = {"partial", "query-done", "partial-missing"}


@pytest.fixture
def sentinel_manager(rng):
    manager = DatasetManager()
    values = rng.uniform(SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=NUM_RECORDS)
    manager.register(
        "census",
        DataTable(
            values,
            column_names=["v"],
            input_ranges=[(SENTINEL_LO, SENTINEL_HI)],
        ),
        total_budget=20.0,
    )
    return manager


def _run_observed(manager, metrics, declared_range):
    """One seeded sharded query, capturing every boundary message."""
    messages = []
    backend = ShardedExecutionBackend(
        shards=SHARDS, workers=WORKERS, metrics=metrics,
        message_observer=messages.append,
    )
    computation = ComputationManager(
        backend="sharded", shards=SHARDS, max_workers=WORKERS,
        sharded=backend, metrics=metrics,
    )
    runtime = GuptRuntime(
        manager, computation_manager=computation, rng=7, metrics=metrics
    )
    try:
        result = runtime.run(
            "census", Mean(), TightRange(declared_range),
            epsilon=EPSILON, block_size=BLOCK_SIZE, rng=11,
        )
    finally:
        runtime.close()
    assert metrics.snapshot()["counters"]["shard.queries"] == 1
    return result, messages


class TestBoundarySchema:
    def test_only_allowlisted_message_shapes_cross(self, sentinel_manager):
        """Every boundary message is one of the three protocol kinds,
        with exact arity — and every partial is a block-summary matrix
        whose row count matches the public shard geometry, far too small
        to carry the record slab."""
        metrics = MetricsRegistry()
        _, messages = _run_observed(
            sentinel_manager, metrics, (SENTINEL_LO, SENTINEL_HI)
        )
        assert messages, "observer saw no boundary traffic"
        counts = shard_block_counts(NUM_RECORDS, BLOCK_SIZE, 1, SHARDS)

        partial_shards = []
        for message in messages:
            kind = message[0]
            assert kind in ALLOWED_KINDS, message
            if kind == "query-done":
                assert len(message) == 2
                continue
            if kind == "partial-missing":
                assert len(message) == 3
                continue
            _, qid, shard, outputs, succeeded, elapsed = message
            partial_shards.append(int(shard))
            outputs = np.asarray(outputs)
            assert outputs.shape == (int(counts[shard]), 1)
            assert np.asarray(succeeded).shape == (int(counts[shard]),)
            assert isinstance(float(elapsed), float)
            # The summary payload is orders of magnitude smaller than
            # the shard's record slice: nothing raw fits through.
            assert outputs.size < NUM_RECORDS // SHARDS

        assert sorted(partial_shards) == list(range(SHARDS))

    def test_partials_are_clamped_before_crossing(self, sentinel_manager):
        """Declared output ranges are applied *inside* the worker: with
        a declared range far below the sentinel band, no number in the
        sentinel band ever crosses the boundary — even though every
        block's true mean lies in it."""
        metrics = MetricsRegistry()
        result, messages = _run_observed(sentinel_manager, metrics, (0.0, 100.0))
        partials = [m for m in messages if m[0] == "partial"]
        assert partials
        for message in partials:
            leaves = numeric_leaves(np.asarray(message[3]).tolist())
            assert leaves, "partial carried no outputs"
            assert all(v <= 100.0 for v in leaves), message
            assert not any(SENTINEL_LO <= v <= SENTINEL_HI for v in leaves)
        # Clamping is idempotent, so narrowing the boundary early does
        # not move the release: the aggregate stays in the clamp range.
        assert all(0.0 <= float(v) <= 100.0 + 10.0 / EPSILON for v in result.value)

    def test_released_bits_match_serial_despite_worker_clamp(self, sentinel_manager):
        """The clamp-at-the-boundary optimization never moves bits."""
        metrics = MetricsRegistry()
        result, _ = _run_observed(sentinel_manager, metrics, (0.0, 100.0))

        serial_manager = DatasetManager()
        values = np.random.default_rng(12345).uniform(
            SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=NUM_RECORDS
        )
        serial_manager.register(
            "census",
            DataTable(values, column_names=["v"],
                      input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
            total_budget=20.0,
        )
        runtime = GuptRuntime(
            serial_manager, rng=7, backend="serial", shards=SHARDS
        )
        try:
            serial = runtime.run(
                "census", Mean(), TightRange((0.0, 100.0)),
                epsilon=EPSILON, block_size=BLOCK_SIZE, rng=11,
            )
        finally:
            runtime.close()
        assert tuple(result.value) == tuple(serial.value)


def _run_remote_observed(manager, metrics, declared_range):
    """One seeded remote query, capturing every frame in both directions.

    Returns ``(result, frames, messages)`` where ``frames`` is a list of
    ``(direction, raw_bytes)`` network captures and ``messages`` the
    decoded node -> coordinator frames.
    """
    from repro.runtime.remote import RemoteShardBackend

    frames = []
    messages = []
    backend = RemoteShardBackend(
        shards=SHARDS, nodes=2, metrics=metrics,
        message_observer=messages.append,
        frame_observer=lambda direction, raw: frames.append((direction, raw)),
        heartbeat_interval=None,
    )
    try:
        computation = ComputationManager(
            backend="remote", shards=SHARDS, max_workers=2,
            sharded=backend, metrics=metrics,
        )
        runtime = GuptRuntime(
            manager, computation_manager=computation, rng=7, metrics=metrics
        )
        try:
            result = runtime.run(
                "census", Mean(), TightRange(declared_range),
                epsilon=EPSILON, block_size=BLOCK_SIZE, rng=11,
            )
            backend.heartbeat_once()  # capture heartbeat frames too
        finally:
            runtime.close()
    finally:
        backend.close()
    return result, frames, messages


class TestRemoteWireSentinels:
    """The shard-IPC privacy claims, re-proven over a real TCP socket."""

    def _decoded(self, frames, direction):
        from repro.runtime.remote import wire

        return [
            wire.decode_frame(raw) for d, raw in frames if d == direction
        ]

    def test_return_channel_is_allowlisted_and_clamped(self, sentinel_manager):
        """Node -> coordinator traffic: allowlisted kinds only, partial
        matrices clamped below the sentinel band, headers carrying
        nothing but public geometry."""
        from repro.runtime.remote import wire

        metrics = MetricsRegistry()
        _, frames, messages = _run_remote_observed(
            sentinel_manager, metrics, (0.0, 100.0)
        )
        received = self._decoded(frames, "recv")
        assert received, "observer saw no node -> coordinator frames"
        partials = 0
        for frame in received:
            assert frame.kind in wire.NODE_TO_COORDINATOR_KINDS, frame.kind_name
            header_leaves = numeric_leaves(dict(frame.header))
            assert not any(
                SENTINEL_LO <= v <= SENTINEL_HI for v in header_leaves
            ), frame.header
            if frame.kind != wire.PARTIAL:
                assert frame.body == b"", frame.kind_name
                continue
            partials += 1
            rows = int(frame.header["shape"][0])
            matrix = np.frombuffer(frame.body[: rows * 8], dtype="<f8")
            assert (matrix <= 100.0).all()
            assert not (
                (matrix >= SENTINEL_LO) & (matrix <= SENTINEL_HI)
            ).any(), "unclamped sentinel-band value crossed the socket"
            # Far too small to carry the shard's raw record slice.
            assert matrix.size < NUM_RECORDS // SHARDS
        assert partials == SHARDS
        # The message_observer hook saw the same decoded traffic.
        assert all(m.kind in wire.NODE_TO_COORDINATOR_KINDS for m in messages)

    def test_each_shard_segment_is_pushed_to_exactly_one_node(
        self, sentinel_manager
    ):
        """A node only ever receives its *own* shards' rows: no shard's
        segment crosses the wire twice in a healthy query.  (Segments
        legitimately carry sentinel-band rows — that is the positive
        control that the capture hook sees real payload bytes.)"""
        from repro.runtime.remote import wire

        metrics = MetricsRegistry()
        _, frames, _ = _run_remote_observed(
            sentinel_manager, metrics, (0.0, 100.0)
        )
        segments = [
            f for f in self._decoded(frames, "send") if f.kind == wire.SEGMENT
        ]
        pushed = [int(f.header["shard"]) for f in segments]
        assert sorted(pushed) == list(range(SHARDS)), pushed
        rows = np.frombuffer(segments[0].body, dtype="<f8")
        assert ((rows >= SENTINEL_LO) & (rows <= SENTINEL_HI)).all()

    def test_heartbeats_carry_tokens_only(self, sentinel_manager):
        from repro.runtime.remote import wire

        metrics = MetricsRegistry()
        _, frames, _ = _run_remote_observed(
            sentinel_manager, metrics, (0.0, 100.0)
        )
        beats = [
            f for f in self._decoded(frames, "send") + self._decoded(frames, "recv")
            if f.kind in (wire.PING, wire.PONG)
        ]
        assert beats, "heartbeat_once produced no PING/PONG frames"
        for frame in beats:
            assert set(frame.header) == {"token"}
            assert frame.body == b""

    def test_remote_release_matches_in_process_sharded(self, sentinel_manager):
        """Observation hooks and transport change nothing: the remote
        release equals the in-process sharded release bit for bit."""
        remote, _, _ = _run_remote_observed(
            sentinel_manager, MetricsRegistry(), (0.0, 100.0)
        )
        in_process, _ = _run_observed(
            sentinel_manager, MetricsRegistry(), (0.0, 100.0)
        )
        assert tuple(remote.value) == tuple(in_process.value)


class TestFederatedWireSentinels:
    """Curator mode: not even segments cross the wire.

    With node-held (curated) datasets the coordinator learns geometry
    at registration and clamped partials at query time — nothing else.
    These sentinels prove the stronger boundary end to end: no SEGMENT
    frame in either direction, no sentinel-band number in any frame,
    no raw row bytes on the socket, no values in coordinator memory —
    while the release stays bit-identical to the in-process engine
    holding all the rows locally.
    """

    def _federated_observed(self, values, declared_range):
        from repro.runtime.remote import RemoteShardBackend, ShardNodeServer

        half = NUM_RECORDS // 2
        curators = [
            ShardNodeServer(curated={"census": values[:half]}),
            ShardNodeServer(curated={"census": values[half:]}),
        ]
        addresses = ["{0}:{1}".format(*c.start()) for c in curators]
        frames = []
        metrics = MetricsRegistry()
        try:
            backend = RemoteShardBackend(
                shards=SHARDS, nodes=addresses, metrics=metrics,
                frame_observer=lambda direction, raw: frames.append(
                    (direction, raw)
                ),
                heartbeat_interval=None,
            )
            computation = ComputationManager(
                backend="remote", shards=SHARDS, max_workers=2,
                sharded=backend, metrics=metrics,
            )
            runtime = GuptRuntime(
                DatasetManager(), computation_manager=computation, rng=7,
                metrics=metrics,
            )
            try:
                table = runtime.register_federated(
                    "census", total_budget=20.0, column_names=["v"],
                    input_ranges=[(SENTINEL_LO, SENTINEL_HI)],
                )
                result = runtime.run(
                    "census", Mean(), TightRange(declared_range),
                    epsilon=EPSILON, block_size=BLOCK_SIZE, rng=11,
                )
            finally:
                runtime.close()
        finally:
            for curator in curators:
                curator.stop()
        return result, frames, backend, table

    def test_no_segments_no_sentinels_no_resident_values(self, rng):
        from repro.datasets.table import DataTable  # noqa: F401 (parity)
        from repro.exceptions import DatasetError
        from repro.runtime.remote import wire

        values = rng.uniform(
            SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=(NUM_RECORDS, 1)
        )
        result, frames, backend, table = self._federated_observed(
            values, (0.0, 100.0)
        )
        assert frames, "observer saw no traffic"
        decoded = [
            (direction, wire.decode_frame(raw)) for direction, raw in frames
        ]
        # 1. No SEGMENT frame ever crosses, in either direction.
        assert not any(
            frame.kind == wire.SEGMENT for _, frame in decoded
        ), "a segment crossed the wire for a federated dataset"
        # 2. No frame header carries a sentinel-band number, and every
        #    PARTIAL body is clamped below the band.
        partials = 0
        for _, frame in decoded:
            header_leaves = numeric_leaves(dict(frame.header))
            assert not any(
                SENTINEL_LO <= v <= SENTINEL_HI for v in header_leaves
            ), frame.header
            if frame.kind == wire.PARTIAL:
                partials += 1
                rows = int(frame.header["shape"][0])
                matrix = np.frombuffer(frame.body[: rows * 8], dtype="<f8")
                assert (matrix <= 100.0).all()
                assert not (
                    (matrix >= SENTINEL_LO) & (matrix <= SENTINEL_HI)
                ).any()
        assert partials == SHARDS
        # 3. No raw row's 8-byte pattern appears in any frame, either
        #    direction (the strongest no-row-bytes check: exact byte
        #    substring search over every captured frame).
        row_patterns = [
            np.asarray(values[i], dtype="<f8").tobytes() for i in (0, 1, -1)
        ]
        for _, raw in frames:
            for pattern in row_patterns:
                assert pattern not in raw, "raw row bytes crossed the wire"
        # 4. Nothing landed in coordinator memory either: the backend's
        #    resident-value cache is empty and the registered table
        #    refuses to produce values at all.
        assert not backend._values
        with pytest.raises(DatasetError, match="federated"):
            table.values
        assert np.all(np.isfinite(np.asarray(result.value)))

    def test_federated_release_matches_in_process_sharded(self, rng):
        values = rng.uniform(
            SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=(NUM_RECORDS, 1)
        )
        federated, _, _, _ = self._federated_observed(values, (0.0, 100.0))

        manager = DatasetManager()
        manager.register(
            "census",
            DataTable(values, column_names=["v"],
                      input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
            total_budget=20.0,
        )
        in_process, _ = _run_observed(manager, MetricsRegistry(), (0.0, 100.0))
        assert tuple(federated.value) == tuple(in_process.value)


class TestRemoteTelemetrySentinels:
    def test_remote_metrics_never_touch_the_sentinel_band(self, sentinel_manager):
        """``remote.*`` telemetry is geometry, counts and seconds only."""
        metrics = MetricsRegistry()
        _run_remote_observed(sentinel_manager, metrics, (SENTINEL_LO, SENTINEL_HI))
        snapshot = metrics.snapshot()
        remote_keys = [
            k for section in ("counters", "gauges", "histograms")
            for k in snapshot[section] if k.startswith("remote.")
        ]
        assert remote_keys, "remote run produced no remote telemetry"
        offenders = [
            v for v in numeric_leaves(snapshot)
            if SENTINEL_LO <= v <= SENTINEL_HI
        ]
        assert not offenders, offenders


class TestNodeCodeStaysOutsideTheLedger:
    """AST pin: shard-node code never imports accounting internals.

    A node holds raw rows, so the blast radius of a compromised node
    must stop at its own slice: budgets, ledgers and journals are
    coordinator-side machinery the node process must not even import.
    """

    NODE_MODULES = ("repro.runtime.remote.node", "repro.runtime.remote.wire")
    FORBIDDEN_PREFIXES = (
        "repro.accounting",
        "repro.datasets",
        "repro.server",
        # Curator mode sharpens the pin: a node now *holds* raw rows,
        # so a slim node deployment must not even ship the
        # coordinator tier — the engine, the backend that talks to
        # other curators, the service, or the CLI query paths.
        "repro.core.gupt",
        "repro.runtime.computation_manager",
        "repro.runtime.remote.backend",
        "repro.runtime.service",
    )

    def _imports_of(self, module_name):
        import ast
        import importlib

        module = importlib.import_module(module_name)
        with open(module.__file__, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
        names = []
        for statement in ast.walk(tree):
            if isinstance(statement, ast.Import):
                names.extend(alias.name for alias in statement.names)
            elif isinstance(statement, ast.ImportFrom):
                base = statement.module or ""
                names.append(base)
                names.extend(f"{base}.{alias.name}" for alias in statement.names)
        return names

    @pytest.mark.parametrize("module_name", NODE_MODULES)
    def test_no_accounting_imports(self, module_name):
        for name in self._imports_of(module_name):
            for prefix in self.FORBIDDEN_PREFIXES:
                assert not name.startswith(prefix), (
                    f"{module_name} imports {name}: node code must never "
                    f"touch {prefix}"
                )
            assert "DatasetManager" not in name, (module_name, name)

    def test_no_accounting_in_the_transitive_import_closure(self):
        """The pin extends transitively, at the source level.

        Follows every ``repro.*`` import from the node modules through
        the files it resolves to (``from pkg import module`` follows the
        module, not the package's re-export ``__init__`` — the root
        package facade imports everything and is exactly what a slim
        node deployment would not ship).  Nothing reachable may be
        accounting, dataset-ledger, or server-tier code.
        """
        import ast
        import os

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )

        def module_file(name):
            base = os.path.join(src, *name.split("."))
            if os.path.isfile(base + ".py"):
                return base + ".py"
            init = os.path.join(base, "__init__.py")
            return init if os.path.isfile(init) else None

        def direct_imports(name):
            path = module_file(name)
            if path is None:
                return []
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read())
            found = []
            for statement in ast.walk(tree):
                if isinstance(statement, ast.Import):
                    found.extend(
                        alias.name for alias in statement.names
                        if alias.name.startswith("repro")
                    )
                elif isinstance(statement, ast.ImportFrom):
                    base = statement.module or ""
                    if not base.startswith("repro"):
                        continue
                    for alias in statement.names:
                        sub = f"{base}.{alias.name}"
                        sub_file = module_file(sub)
                        if sub_file and not sub_file.endswith("__init__.py"):
                            found.append(sub)  # a submodule: follow it
                        else:
                            found.append(base)  # a name: follow its module
            return found

        closure, stack = set(), list(self.NODE_MODULES)
        while stack:
            module = stack.pop()
            if module in closure:
                continue
            closure.add(module)
            stack.extend(direct_imports(module))

        offenders = sorted(
            module for module in closure
            if module.startswith(self.FORBIDDEN_PREFIXES)
        )
        assert not offenders, (
            f"node code transitively reaches forbidden modules: {offenders}"
        )
        # The closure is small and self-contained — a regression that
        # suddenly drags in half the package should be loud.
        assert len(closure) < 25, sorted(closure)


class TestTelemetryStaysReleaseSafe:
    def test_shard_metrics_never_touch_the_sentinel_band(self, sentinel_manager):
        """The observability invariant extends to ``shard.*``: geometry,
        counts and seconds only — no block outputs, no records."""
        metrics = MetricsRegistry()
        _run_observed(sentinel_manager, metrics, (SENTINEL_LO, SENTINEL_HI))
        snapshot = metrics.snapshot()
        shard_keys = [
            k for section in ("counters", "gauges", "histograms")
            for k in snapshot[section] if k.startswith("shard.")
        ]
        assert shard_keys, "sharded run produced no shard telemetry"
        offenders = [
            v for v in numeric_leaves(snapshot)
            if SENTINEL_LO <= v <= SENTINEL_HI
        ]
        assert not offenders, offenders
