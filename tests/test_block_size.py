"""Unit tests for optimal block-size selection (§4.3)."""

import numpy as np
import pytest

from repro.core.aging import AgedData
from repro.core.block_size import BlockSizeSearch
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean, Median
from repro.exceptions import GuptError, InvalidPrivacyParameter


@pytest.fixture
def skewed_aged(rng):
    return AgedData(DataTable(rng.lognormal(1.1, 0.9, size=2000)), rng=0)


class TestObjective:
    def test_decomposes_into_a_plus_b(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=10_000, sensitivity=60.0)
        total, estimation, noise = search.objective(Median(), 50, epsilon=2.0)
        assert total == pytest.approx(estimation + noise)

    def test_noise_term_formula(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=10_000, sensitivity=60.0)
        _, _, noise = search.objective(Mean(), 100, epsilon=2.0)
        # B = sqrt(2) * s / (eps * n^alpha), n^alpha = n / beta.
        assert noise == pytest.approx(np.sqrt(2) * 60.0 / (2.0 * (10_000 / 100)))

    def test_noise_grows_with_block_size(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=10_000, sensitivity=60.0)
        _, _, small = search.objective(Mean(), 10, epsilon=2.0)
        _, _, large = search.objective(Mean(), 500, epsilon=2.0)
        assert large > small

    def test_invalid_epsilon_rejected(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=10_000, sensitivity=1.0)
        with pytest.raises(InvalidPrivacyParameter):
            search.objective(Mean(), 10, epsilon=0.0)


class TestSearch:
    def test_mean_prefers_smallest_blocks(self, skewed_aged):
        # The mean has no estimation error, so noise dominates and the
        # optimum is block size 1 (the paper's Example 3).
        search = BlockSizeSearch(skewed_aged, live_records=10_000, sensitivity=60.0)
        choice = search.search(Mean(), epsilon=2.0)
        assert choice.block_size == 1

    def test_median_prefers_moderate_blocks_at_low_epsilon(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=2000, sensitivity=60.0)
        choice = search.search(Median(), epsilon=2.0)
        assert 2 <= choice.block_size <= 200

    def test_median_optimum_grows_with_epsilon(self, skewed_aged):
        # Cheaper noise shifts the balance toward larger blocks (Fig. 9).
        search = BlockSizeSearch(skewed_aged, live_records=2000, sensitivity=60.0)
        low = search.search(Median(), epsilon=1.0)
        high = search.search(Median(), epsilon=20.0)
        assert high.block_size >= low.block_size

    def test_choice_reports_alpha_consistent_with_block_size(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=10_000, sensitivity=1.0)
        choice = search.search(Median(), epsilon=2.0)
        assert 10_000**choice.alpha == pytest.approx(
            10_000 / choice.block_size, rel=0.01
        )

    def test_block_size_never_exceeds_aged_size(self, rng):
        tiny = AgedData(DataTable(rng.normal(size=50)), rng=0)
        search = BlockSizeSearch(tiny, live_records=100_000, sensitivity=1.0)
        choice = search.search(Median(), epsilon=1.0)
        assert choice.block_size <= 50

    def test_predicted_error_is_the_minimum_on_grid(self, skewed_aged):
        search = BlockSizeSearch(skewed_aged, live_records=2000, sensitivity=60.0)
        choice = search.search(Median(), epsilon=2.0)
        for beta in (1, 5, 20, 100, 500):
            total, _, _ = search.objective(Median(), beta, epsilon=2.0)
            assert choice.predicted_error <= total + 1e-9


class TestValidation:
    def test_bad_live_records(self, skewed_aged):
        with pytest.raises(GuptError):
            BlockSizeSearch(skewed_aged, live_records=1, sensitivity=1.0)

    def test_bad_sensitivity(self, skewed_aged):
        with pytest.raises(GuptError):
            BlockSizeSearch(skewed_aged, live_records=100, sensitivity=-1.0)

    def test_bad_resolution(self, skewed_aged):
        with pytest.raises(GuptError):
            BlockSizeSearch(skewed_aged, live_records=100, sensitivity=1.0, resolution=1)
