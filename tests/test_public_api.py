"""Stability checks on the public API surface."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("module", [
        "repro.accounting",
        "repro.attacks",
        "repro.audit",
        "repro.baselines",
        "repro.baselines.airavat",
        "repro.baselines.pinq",
        "repro.cli",
        "repro.core",
        "repro.datasets",
        "repro.estimators",
        "repro.experiments",
        "repro.mechanisms",
        "repro.runtime",
        "repro.streaming",
    ])
    def test_subpackages_importable_with_all(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_every_public_module_has_a_docstring(self):
        import pkgutil

        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing __main__ modules runs their CLI
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"


class TestSubprocessSpawn:
    def test_spawn_start_method_supported(self):
        """Spawn-based chambers need picklable programs; our estimator
        dataclasses are, so the slow-but-portable start method works."""
        import numpy as np

        from repro.estimators.statistics import Mean
        from repro.runtime.sandbox import SubprocessChamber

        chamber = SubprocessChamber(start_method="spawn")
        block = np.linspace(0.0, 10.0, 20).reshape(-1, 1)
        result = chamber.run_block(Mean(), block, 1, np.array([0.0]))
        assert result.succeeded
        assert result.output[0] == pytest.approx(block.mean())
