"""Unit tests for the metrics registry."""

import json
import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc()
        registry.counter("queries").inc(2.5)
        assert registry.counter("queries").value == 3.5

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("queries").inc(-1.0)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("budget").set(5.0)
        registry.gauge("budget").set(2.5)
        assert registry.gauge("budget").value == 2.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
            "mean": 2.0, "last": 2.0,
        }

    def test_empty_histogram_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("latency").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_labels_isolate_series(self):
        registry = MetricsRegistry()
        registry.counter("queries", dataset="a").inc()
        registry.counter("queries", dataset="b").inc(2)
        assert registry.counter("queries", dataset="a").value == 1
        assert registry.counter("queries", dataset="b").value == 2
        assert registry.counter("queries").value == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1


class TestSnapshot:
    def test_snapshot_renders_labeled_names(self):
        registry = MetricsRegistry()
        registry.counter("queries", dataset="x").inc()
        registry.gauge("budget", dataset="x").set(1.5)
        registry.histogram("latency").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['queries{dataset="x"}'] == 1
        assert snapshot["gauges"]['budget{dataset="x"}'] == 1.5
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["spans"] == []

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc()
        with registry.span("phase"):
            pass
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["queries"] == 1
        assert parsed["spans"][0]["name"] == "phase"

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1)
        with registry.span("phase"):
            pass
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == []


class TestDisabledRegistry:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("queries").inc()
        registry.gauge("g").set(9.0)
        registry.histogram("h").observe(1.0)
        with registry.span("phase"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == []

    def test_disabled_span_still_times_itself(self):
        registry = MetricsRegistry(enabled=False)
        with registry.span("phase") as span:
            pass
        assert span.seconds is not None and span.seconds >= 0.0


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        original = get_registry()
        mine = MetricsRegistry()
        with use_registry(mine) as active:
            assert active is mine
            assert get_registry() is mine
        assert get_registry() is original

    def test_set_registry_returns_previous(self):
        original = get_registry()
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert previous is original
            assert get_registry() is mine
        finally:
            set_registry(original)


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hist = registry.histogram("obs")

        def hammer():
            for _ in range(1000):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert hist.count == 8000
        assert hist.sum == pytest.approx(8000.0)
