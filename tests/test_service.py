"""Unit tests for the hosted three-party service layer."""

import numpy as np
import pytest

from repro.core.budget_estimation import AccuracyGoal
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import GuptError
from repro.runtime.service import ANALYST, OWNER, GuptService, QueryRequest


@pytest.fixture
def service():
    return GuptService(rng=0)


@pytest.fixture
def owner(service):
    return service.enroll(OWNER, name="hospital")


@pytest.fixture
def analyst(service):
    return service.enroll(ANALYST, name="researcher")


@pytest.fixture
def registered(service, owner, rng):
    ages = rng.normal(40, 10, size=3000).clip(0, 150)
    table = DataTable(ages, column_names=["age"], input_ranges=[(0.0, 150.0)])
    service.register_dataset(owner.token, "census", table, total_budget=5.0)
    return table


class TestEnrollment:
    def test_tokens_are_unique(self, service):
        a = service.enroll(ANALYST)
        b = service.enroll(ANALYST)
        assert a.token != b.token

    def test_unknown_role_rejected(self, service):
        with pytest.raises(GuptError):
            service.enroll("superuser")

    def test_unknown_token_rejected(self, service):
        with pytest.raises(GuptError):
            service.list_datasets("forged-token")


class TestOwnerInterface:
    def test_register_returns_public_description(self, service, owner, rng):
        table = DataTable(rng.uniform(size=(100, 2)))
        description = service.register_dataset(
            owner.token, "d", table, total_budget=3.0
        )
        assert description.num_records == 100
        assert description.num_dimensions == 2
        assert description.remaining_budget == 3.0
        assert not description.has_aged_data

    def test_analyst_cannot_register(self, service, analyst, rng):
        table = DataTable(rng.uniform(size=10))
        with pytest.raises(GuptError):
            service.register_dataset(analyst.token, "d", table, total_budget=1.0)

    def test_owner_reads_ledger(self, service, owner, analyst, registered):
        service.submit(
            analyst.token,
            QueryRequest(
                dataset="census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)), epsilon=1.0,
                query_name="avg",
            ),
        )
        entries = service.ledger_entries(owner.token, "census")
        assert entries == [("avg", 1.0)]

    def test_analyst_cannot_read_ledger(self, service, analyst, registered):
        with pytest.raises(GuptError):
            service.ledger_entries(analyst.token, "census")


class TestAnalystInterface:
    def test_query_returns_private_value(self, service, analyst, registered):
        response = service.submit(
            analyst.token,
            QueryRequest(
                dataset="census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)), epsilon=2.0,
            ),
        )
        assert response.ok
        assert response.epsilon_charged == 2.0
        assert 20.0 < response.value[0] < 60.0

    def test_owner_cannot_query(self, service, owner, registered):
        with pytest.raises(GuptError):
            service.submit(
                owner.token,
                QueryRequest(
                    dataset="census", program=Mean(),
                    range_strategy=TightRange((0.0, 150.0)), epsilon=1.0,
                ),
            )

    def test_budget_refusal_is_structured_not_raised(self, service, analyst, registered):
        request = QueryRequest(
            dataset="census", program=Mean(),
            range_strategy=TightRange((0.0, 150.0)), epsilon=4.0,
        )
        assert service.submit(analyst.token, request).ok
        refused = service.submit(analyst.token, request)
        assert not refused.ok
        assert "budget exhausted" in refused.error
        assert refused.value == ()

    def test_unknown_dataset_is_structured_error(self, service, analyst):
        response = service.submit(
            analyst.token,
            QueryRequest(
                dataset="missing", program=Mean(),
                range_strategy=TightRange((0.0, 1.0)), epsilon=1.0,
            ),
        )
        assert not response.ok
        assert "missing" in response.error

    def test_broken_program_is_structured_error(self, service, analyst, registered):
        def broken(block):
            raise RuntimeError("always fails")

        response = service.submit(
            analyst.token,
            QueryRequest(
                dataset="census", program=broken,
                range_strategy=TightRange((0.0, 150.0)), epsilon=0.5,
            ),
        )
        assert not response.ok
        assert "every block" in response.error

    def test_describe_shows_remaining_budget(self, service, analyst, registered):
        before = service.describe_dataset(analyst.token, "census")
        service.submit(
            analyst.token,
            QueryRequest(
                dataset="census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)), epsilon=1.0,
            ),
        )
        after = service.describe_dataset(analyst.token, "census")
        assert after.remaining_budget == pytest.approx(before.remaining_budget - 1.0)

    def test_accuracy_goal_through_the_service(self, service, owner, analyst, rng):
        ages = rng.normal(40, 10, size=4000).clip(0, 150)
        table = DataTable(ages)
        service.register_dataset(
            owner.token, "aged-census", table, total_budget=5.0, aged_fraction=0.1
        )
        response = service.submit(
            analyst.token,
            QueryRequest(
                dataset="aged-census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)),
                accuracy=AccuracyGoal(rho=0.9, delta=0.1), block_size=40,
            ),
        )
        assert response.ok
        assert 0.0 < response.epsilon_charged < 5.0

    def test_list_datasets(self, service, analyst, registered):
        assert service.list_datasets(analyst.token) == ["census"]
