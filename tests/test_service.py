"""Unit tests for the hosted three-party service layer."""

import numpy as np
import pytest

from repro.core.budget_estimation import AccuracyGoal
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import GuptError
from repro.runtime.service import ANALYST, OWNER, GuptService, QueryRequest


@pytest.fixture
def service():
    return GuptService(rng=0)


@pytest.fixture
def owner(service):
    return service.enroll(OWNER, name="hospital")


@pytest.fixture
def analyst(service):
    return service.enroll(ANALYST, name="researcher")


@pytest.fixture
def registered(service, owner, rng):
    ages = rng.normal(40, 10, size=3000).clip(0, 150)
    table = DataTable(ages, column_names=["age"], input_ranges=[(0.0, 150.0)])
    service.register_dataset(owner.token, "census", table, total_budget=5.0)
    return table


class TestEnrollment:
    def test_tokens_are_unique(self, service):
        a = service.enroll(ANALYST)
        b = service.enroll(ANALYST)
        assert a.token != b.token

    def test_unknown_role_rejected(self, service):
        with pytest.raises(GuptError):
            service.enroll("superuser")

    def test_unknown_token_rejected(self, service):
        with pytest.raises(GuptError):
            service.list_datasets("forged-token")


class TestOwnerInterface:
    def test_register_returns_public_description(self, service, owner, rng):
        table = DataTable(rng.uniform(size=(100, 2)))
        description = service.register_dataset(
            owner.token, "d", table, total_budget=3.0
        )
        assert description.num_records == 100
        assert description.num_dimensions == 2
        assert description.remaining_budget == 3.0
        assert not description.has_aged_data

    def test_analyst_cannot_register(self, service, analyst, rng):
        table = DataTable(rng.uniform(size=10))
        with pytest.raises(GuptError):
            service.register_dataset(analyst.token, "d", table, total_budget=1.0)

    def test_owner_reads_ledger(self, service, owner, analyst, registered):
        service.execute(
            analyst.token,
            QueryRequest(
                dataset="census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)), epsilon=1.0,
                query_name="avg",
            ),
        )
        entries = service.ledger_entries(owner.token, "census")
        assert entries == [("avg", 1.0)]

    def test_analyst_cannot_read_ledger(self, service, analyst, registered):
        with pytest.raises(GuptError):
            service.ledger_entries(analyst.token, "census")


class TestAnalystInterface:
    def test_query_returns_private_value(self, service, analyst, registered):
        response = service.execute(
            analyst.token,
            QueryRequest(
                dataset="census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)), epsilon=2.0,
            ),
        )
        assert response.ok
        assert response.epsilon_charged == 2.0
        assert 20.0 < response.value[0] < 60.0

    def test_owner_cannot_query(self, service, owner, registered):
        with pytest.raises(GuptError):
            service.execute(
                owner.token,
                QueryRequest(
                    dataset="census", program=Mean(),
                    range_strategy=TightRange((0.0, 150.0)), epsilon=1.0,
                ),
            )

    def test_budget_refusal_is_structured_not_raised(self, service, analyst, registered):
        request = QueryRequest(
            dataset="census", program=Mean(),
            range_strategy=TightRange((0.0, 150.0)), epsilon=4.0,
        )
        assert service.execute(analyst.token, request).ok
        refused = service.execute(analyst.token, request)
        assert not refused.ok
        assert "budget exhausted" in refused.error
        assert refused.value == ()

    def test_unknown_dataset_is_structured_error(self, service, analyst):
        response = service.execute(
            analyst.token,
            QueryRequest(
                dataset="missing", program=Mean(),
                range_strategy=TightRange((0.0, 1.0)), epsilon=1.0,
            ),
        )
        assert not response.ok
        assert "missing" in response.error

    def test_broken_program_is_structured_error(self, service, analyst, registered):
        def broken(block):
            raise RuntimeError("always fails")

        response = service.execute(
            analyst.token,
            QueryRequest(
                dataset="census", program=broken,
                range_strategy=TightRange((0.0, 150.0)), epsilon=0.5,
            ),
        )
        assert not response.ok
        assert "every block" in response.error

    def test_describe_shows_remaining_budget(self, service, analyst, registered):
        before = service.describe_dataset(analyst.token, "census")
        service.execute(
            analyst.token,
            QueryRequest(
                dataset="census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)), epsilon=1.0,
            ),
        )
        after = service.describe_dataset(analyst.token, "census")
        assert after.remaining_budget == pytest.approx(before.remaining_budget - 1.0)

    def test_accuracy_goal_through_the_service(self, service, owner, analyst, rng):
        ages = rng.normal(40, 10, size=4000).clip(0, 150)
        table = DataTable(ages)
        service.register_dataset(
            owner.token, "aged-census", table, total_budget=5.0, aged_fraction=0.1
        )
        response = service.execute(
            analyst.token,
            QueryRequest(
                dataset="aged-census", program=Mean(),
                range_strategy=TightRange((0.0, 150.0)),
                accuracy=AccuracyGoal(rho=0.9, delta=0.1), block_size=40,
            ),
        )
        assert response.ok
        assert 0.0 < response.epsilon_charged < 5.0

    def test_list_datasets(self, service, analyst, registered):
        assert service.list_datasets(analyst.token) == ["census"]

    def test_failed_query_reports_rolled_back_epsilon(
        self, service, analyst, registered
    ):
        def broken(block):
            raise RuntimeError("always fails")

        before = service.describe_dataset(analyst.token, "census")
        response = service.execute(
            analyst.token,
            QueryRequest(
                dataset="census", program=broken,
                range_strategy=TightRange((0.0, 150.0)), epsilon=0.5,
            ),
        )
        after = service.describe_dataset(analyst.token, "census")
        assert not response.ok
        assert response.epsilon_rolled_back == 0.5
        # The pre-release failure returned its hold: nothing was spent.
        assert after.remaining_budget == before.remaining_budget

    def test_seeded_requests_are_reproducible(self, service, analyst, registered):
        request = QueryRequest(
            dataset="census", program=Mean(),
            range_strategy=TightRange((0.0, 150.0)), epsilon=0.5, seed=321,
        )
        first = service.execute(analyst.token, request)
        second = service.execute(analyst.token, request)
        assert first.ok and second.ok
        assert first.value == second.value  # bit-identical


class TestAsyncHandles:
    """submit/result/cancel: the scheduler threaded through the service."""

    def _request(self, seed=None, epsilon=0.5):
        return QueryRequest(
            dataset="census", program=Mean(),
            range_strategy=TightRange((0.0, 150.0)), epsilon=epsilon, seed=seed,
        )

    def test_submit_returns_handle_result_blocks(self, service, analyst, registered):
        handle = service.submit(analyst.token, self._request())
        assert handle.dataset == "census"
        assert handle.principal == "researcher"
        response = service.result(handle)
        assert response.ok
        assert 20.0 < response.value[0] < 60.0
        service.close()

    def test_submit_matches_execute_with_same_seed(
        self, service, analyst, registered
    ):
        direct = service.execute(analyst.token, self._request(seed=77))
        handle = service.submit(analyst.token, self._request(seed=77))
        scheduled = service.result(handle)
        assert direct.ok and scheduled.ok
        assert direct.value == scheduled.value  # bit-identical paths
        service.close()

    def test_owner_cannot_submit(self, service, owner, registered):
        with pytest.raises(GuptError):
            service.submit(owner.token, self._request())

    def test_cancel_before_dispatch_spends_nothing(
        self, service, analyst, registered
    ):
        import threading

        gate = threading.Event()

        def blocked(block):
            gate.wait(5.0)
            return float(np.mean(block))

        before = service.describe_dataset(analyst.token, "census")
        first = service.submit(analyst.token, QueryRequest(
            dataset="census", program=blocked,
            range_strategy=TightRange((0.0, 150.0)), epsilon=0.5,
        ))
        second = service.submit(analyst.token, self._request())
        cancelled = service.cancel(second)
        gate.set()
        assert cancelled
        refusal = service.result(second)
        assert not refusal.ok and "cancelled" in refusal.error
        assert service.result(first) is not None
        after = service.describe_dataset(analyst.token, "census")
        # Only the first (uncancelled) query could have spent budget.
        assert after.remaining_budget >= before.remaining_budget - 0.5
        service.close()

    def test_close_is_safe_without_scheduler(self, service):
        service.close()  # lazy scheduler never created; still clean

    def test_budget_refusals_structured_through_scheduler(
        self, service, analyst, registered
    ):
        handles = [
            service.submit(analyst.token, self._request(seed=i, epsilon=2.0))
            for i in range(4)
        ]
        responses = [service.result(h) for h in handles]
        succeeded = [r for r in responses if r.ok]
        refused = [r for r in responses if not r.ok]
        # 5.0 total budget fits exactly two 2.0-epsilon releases.
        assert len(succeeded) == 2
        assert len(refused) == 2
        assert all(r.error for r in refused)
        service.close()


class TestResultTimeoutSemantics:
    """The pinned result(timeout=...) contract (mirrored by HTTP poll).

    On expiry ``result`` **returns None and never raises**; the query is
    unaffected (still queued/running, no budget movement, no state
    change); any number of expired waits may precede the terminal
    response, which — once produced — is returned again on every later
    call.  ``timeout=0`` is a non-blocking poll.
    """

    def _slow_request(self, pause: float = 0.01):
        import time as _time

        def slow_mean(block):
            _time.sleep(pause)
            return float(np.mean(block))

        return QueryRequest(
            dataset="census", program=slow_mean,
            range_strategy=TightRange((0.0, 150.0)), epsilon=0.5,
            block_size=150, seed=5,  # 20 blocks -> >=50ms wall-clock
        )

    def test_expiry_returns_none_never_raises(self, service, analyst, registered):
        handle = service.submit(analyst.token, self._slow_request())
        assert service.result(handle, timeout=0.0) is None  # non-blocking poll
        assert service.result(handle, timeout=0.001) is None
        final = service.result(handle)  # no timeout: waits to terminal
        assert final is not None and final.ok
        service.close()

    def test_expired_waits_do_not_perturb_the_query(
        self, service, analyst, registered
    ):
        handle = service.submit(analyst.token, self._slow_request())
        polls = 0
        while service.result(handle, timeout=0.002) is None:
            polls += 1
            assert polls < 10_000, "query never settled"
        final = service.result(handle, timeout=0.0)
        assert final is not None and final.ok
        # Exactly one charge despite many expired waits.
        entries = [e for e in service.ledger_entries(
            service.enroll(OWNER, "auditor").token, "census"
        )]
        assert len(entries) == 1
        assert entries[0][1] == 0.5
        service.close()

    def test_settled_query_ignores_timeout(self, service, analyst, registered):
        request = QueryRequest(
            dataset="census", program=Mean(),
            range_strategy=TightRange((0.0, 150.0)), epsilon=0.5, seed=7,
        )
        handle = service.submit(analyst.token, request)
        final = service.result(handle)
        # timeout=0 on a settled query returns the response, not None —
        # and keeps returning the identical response forever.
        assert service.result(handle, timeout=0.0) == final
        assert service.result(handle, timeout=0.001) == final
        assert service.result(handle) == final
        service.close()

    def test_foreign_handle_raises_unknown(self, service, analyst, registered):
        from repro.exceptions import UnknownHandleError

        handle = service.submit(analyst.token, QueryRequest(
            dataset="census", program=Mean(),
            range_strategy=TightRange((0.0, 150.0)), epsilon=0.5,
        ))
        service.result(handle)
        other = GuptService(rng=0)
        with pytest.raises(UnknownHandleError):
            other.scheduler.state(handle)
        other.close()
        service.close()
