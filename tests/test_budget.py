"""Unit tests for PrivacyBudget."""

import threading

import pytest

from repro.accounting.budget import PrivacyBudget
from repro.exceptions import InvalidPrivacyParameter, PrivacyBudgetExhausted


class TestCharge:
    def test_charge_reduces_remaining(self):
        budget = PrivacyBudget(2.0)
        budget.charge(0.5)
        assert budget.remaining == pytest.approx(1.5)
        assert budget.spent == pytest.approx(0.5)

    def test_exact_exhaustion(self):
        budget = PrivacyBudget(1.0)
        budget.charge(1.0)
        assert budget.remaining == 0.0

    def test_overcharge_raises_and_preserves_state(self):
        budget = PrivacyBudget(1.0)
        budget.charge(0.6)
        with pytest.raises(PrivacyBudgetExhausted):
            budget.charge(0.6)
        assert budget.spent == pytest.approx(0.6)

    def test_exhausted_error_carries_amounts(self):
        budget = PrivacyBudget(1.0, dataset="census")
        with pytest.raises(PrivacyBudgetExhausted) as excinfo:
            budget.charge(2.0)
        assert excinfo.value.requested == 2.0
        assert excinfo.value.remaining == 1.0
        assert excinfo.value.dataset == "census"

    def test_many_fractional_charges_tolerated(self):
        # eps/k charged k times must not trip on float rounding.
        budget = PrivacyBudget(1.0)
        for _ in range(7):
            budget.charge(1.0 / 7.0)
        assert budget.remaining == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("amount", [0.0, -0.5, float("nan"), float("inf")])
    def test_invalid_charge_rejected(self, amount):
        budget = PrivacyBudget(1.0)
        with pytest.raises(InvalidPrivacyParameter):
            budget.charge(amount)

    def test_can_afford(self):
        budget = PrivacyBudget(1.0)
        assert budget.can_afford(1.0)
        assert not budget.can_afford(1.1)

    @pytest.mark.parametrize("total", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_total_rejected(self, total):
        with pytest.raises(InvalidPrivacyParameter):
            PrivacyBudget(total)

    def test_concurrent_charges_never_overspend(self):
        budget = PrivacyBudget(10.0)
        errors = []

        def worker():
            for _ in range(100):
                try:
                    budget.charge(0.05)
                except PrivacyBudgetExhausted:
                    errors.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 400 charges of 0.05 would need 20.0; half must be refused.
        assert budget.spent <= 10.0 + 1e-6
        assert len(errors) > 0
