"""Unit tests for the privacy ledger."""

import pytest

from repro.accounting.ledger import PrivacyLedger


class TestLedger:
    def test_record_appends(self):
        ledger = PrivacyLedger()
        ledger.record(0.5, "mean")
        ledger.record(0.25, "variance")
        assert len(ledger) == 2

    def test_sequences_are_monotone(self):
        ledger = PrivacyLedger()
        entries = [ledger.record(0.1, f"q{i}") for i in range(5)]
        assert [e.sequence for e in entries] == [0, 1, 2, 3, 4]

    def test_total_spent(self):
        ledger = PrivacyLedger()
        ledger.record(0.5, "a")
        ledger.record(0.3, "b")
        assert ledger.total_spent == pytest.approx(0.8)

    def test_by_query_groups(self):
        ledger = PrivacyLedger()
        ledger.record(0.5, "mean")
        ledger.record(0.2, "mean")
        ledger.record(0.1, "variance")
        totals = ledger.by_query()
        assert totals["mean"] == pytest.approx(0.7)
        assert totals["variance"] == pytest.approx(0.1)

    def test_iteration_yields_entries_in_order(self):
        ledger = PrivacyLedger()
        ledger.record(0.1, "a")
        ledger.record(0.2, "b")
        assert [e.query for e in ledger] == ["a", "b"]

    def test_detail_is_stored(self):
        ledger = PrivacyLedger()
        entry = ledger.record(0.1, "q", detail="range estimation")
        assert entry.detail == "range estimation"

    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert len(ledger) == 0
        assert ledger.total_spent == 0.0
        assert ledger.by_query() == {}
