"""Crash-injection matrix: kill the process at every journal failpoint.

Each case launches :mod:`repro.testing.crash_driver` as a subprocess
with one failpoint armed in ``crash`` mode (``os._exit`` mid-operation —
the in-process equivalent of ``kill -9``), then recovers the journal in
*this* process and checks the one invariant that matters:

    recovered spent >= every commit the victim reported before dying,
    and recovered remaining <= the budget truth at the instant of death.

A crash may waste epsilon (a reservation with no terminal record is
conservatively treated as spent); it must never mint it.

The matrix is deterministic, not a race hunt: failpoints fire on an
exact hit count, and the driver's journal-append sequence is fixed
(``register`` is append 1, query *j*'s reserve is append ``2j`` and its
commit append ``2j + 1``), so each case dies at one known instruction.
"""

import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.accounting.journal import fsck, journal_path, recover, scan
from repro.accounting.manager import DatasetManager
from repro.datasets.table import DataTable
from repro.testing.failpoints import CRASH_EXIT_CODE, ENV_VAR

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

EPSILON = 0.25  # dyadic: every expected total is exact in binary
TOTAL = 2.0
QUERIES = 3
TARGET = 2  # the query (1-based) whose lifecycle the matrix interrupts


def run_driver(state_dir, failpoints="", mode="manager", timeout=120.0):
    """Run the victim; returns (returncode, committed epsilons, stdout)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if failpoints:
        env[ENV_VAR] = failpoints
    else:
        env.pop(ENV_VAR, None)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.testing.crash_driver",
            "--state-dir", str(state_dir), "--mode", mode,
            "--total", str(TOTAL), "--epsilon", str(EPSILON),
            "--queries", str(QUERIES),
        ],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    committed = [
        float(line.split(" ", 1)[1])
        for line in proc.stdout.splitlines()
        if line.startswith("COMMITTED ")
    ]
    return proc.returncode, committed, proc.stdout


def recovered_census(state_dir):
    result = recover(journal_path(str(state_dir)))
    return result.datasets["census" if "census" in result.datasets else "crash"]


# Append index of the record the failpoint interrupts, and the exact
# recovered spend each (site, record) combination must produce:
#   * dying before the reserve record is durable loses the reservation
#     entirely — the query never happened, spent = (TARGET-1) * eps;
#   * dying once the reserve record reached the file (even unsynced: the
#     OS page cache survives os._exit) leaves an unsettled hold that
#     recovery resolves conservatively — spent = TARGET * eps;
#   * dying anywhere around the commit record also yields TARGET * eps,
#     whether the commit landed (counted as committed) or not (the
#     reserve resolves conservatively).  Same total, different paths.
RESERVE_APPEND = 2 * TARGET
COMMIT_APPEND = 2 * TARGET + 1

MATRIX = [
    # (case id, failpoint spec, expected spent multiplier, torn tail?)
    ("reserve-pre", f"journal.append.pre=crash@{RESERVE_APPEND}",
     TARGET - 1, False),
    ("reserve-torn", f"journal.append.torn=crash@{RESERVE_APPEND}",
     TARGET - 1, True),
    ("reserve-pre-fsync", f"journal.append.pre_fsync=crash@{RESERVE_APPEND}",
     TARGET, False),
    ("reserve-post", f"journal.append.post=crash@{RESERVE_APPEND}",
     TARGET, False),
    ("commit-pre", f"journal.append.pre=crash@{COMMIT_APPEND}",
     TARGET, False),
    ("commit-torn", f"journal.append.torn=crash@{COMMIT_APPEND}",
     TARGET, True),
    ("commit-pre-fsync", f"journal.append.pre_fsync=crash@{COMMIT_APPEND}",
     TARGET, False),
    ("commit-post", f"journal.append.post=crash@{COMMIT_APPEND}",
     TARGET, False),
]


class TestCrashMatrix:
    @pytest.mark.parametrize(
        "spec,multiplier,torn", [m[1:] for m in MATRIX],
        ids=[m[0] for m in MATRIX],
    )
    def test_recovery_never_resurrects_budget(self, tmp_path, spec,
                                              multiplier, torn):
        returncode, committed, stdout = run_driver(tmp_path, spec)
        assert returncode == CRASH_EXIT_CODE, stdout
        assert "DONE" not in stdout

        path = journal_path(str(tmp_path))
        # fsck (read-only) sees exactly the torn tail the crash shape
        # predicts, before anything repairs it.
        report = fsck(path)
        assert report.torn == torn, report.to_dict()

        state = recovered_census(tmp_path)
        expected = multiplier * EPSILON

        # Floor: every commit the victim reported made it to disk first
        # (write-ahead), so recovery can never fall below the report.
        assert state.spent >= math.fsum(committed) - 1e-12
        # Exactness: dyadic epsilons, so the conservative total is not
        # merely close — it is the predicted float, bit for bit.
        assert state.spent == expected
        assert state.remaining == TOTAL - expected
        # No hold survives recovery: everything settled conservatively.
        assert not state.pending

    @pytest.mark.parametrize(
        "spec,multiplier,torn", [m[1:] for m in MATRIX],
        ids=[m[0] for m in MATRIX],
    )
    def test_successor_manager_adopts_conservative_state(self, tmp_path, spec,
                                                         multiplier, torn):
        returncode, _, _ = run_driver(tmp_path, spec)
        assert returncode == CRASH_EXIT_CODE
        expected = multiplier * EPSILON
        with DatasetManager(state_dir=str(tmp_path)) as manager:
            assert manager.recovered_names() == ["crash"]
            adopted = manager.register(
                "crash", DataTable([[1.0]], column_names=("x",)),
                total_budget=TOTAL,
            )
            assert adopted.budget.spent == expected
            assert adopted.budget.remaining == TOTAL - expected
            # The successor keeps journaling: spend the rest and die
            # cleanly, and the books still balance on the next replay.
            adopted.charge(EPSILON, "post-crash")
        state = recovered_census(tmp_path)
        assert state.spent == expected + EPSILON


class TestTornTailFsckRoundTrip:
    """Satellite: fsck detects the torn tail and repairs it without
    losing any record written before the tear."""

    def test_fsck_repair_round_trip(self, tmp_path):
        spec = f"journal.append.torn=crash@{COMMIT_APPEND}"
        returncode, committed, _ = run_driver(tmp_path, spec)
        assert returncode == CRASH_EXIT_CODE
        path = journal_path(str(tmp_path))

        before = fsck(path)
        assert before.torn and not before.repaired
        assert before.to_dict()["truncated_bytes"] > 0
        intact_records = before.records

        repaired = fsck(path, repair=True)
        assert repaired.repaired and repaired.clean
        after = fsck(path)
        assert not after.torn
        # Every record before the tear survived the repair.
        assert after.records == intact_records
        assert len(scan(path).records) == intact_records
        # And the repaired journal still recovers conservatively.
        state = recovered_census(tmp_path)
        assert state.spent == TARGET * EPSILON
        assert state.spent >= math.fsum(committed) - 1e-12


class TestCrashFreeBaseline:
    def test_clean_run_is_bit_exact(self, tmp_path):
        returncode, committed, stdout = run_driver(tmp_path)
        assert returncode == 0, stdout
        assert "DONE" in stdout
        assert committed == [EPSILON] * QUERIES
        state = recovered_census(tmp_path)
        # No reservation in flight at exit: fsum parity is exact.
        assert state.spent == math.fsum(committed)
        assert state.remaining == TOTAL - QUERIES * EPSILON
        assert state.conservative == 0


class TestServiceStackCrashes:
    """Crash sites above the journal, through the full hosted service."""

    def test_commit_durable_but_not_applied(self, tmp_path):
        # manager.commit.durable sits after the journal's commit append
        # and before the in-memory spend: the worst-case window where
        # disk says "spent" and memory never heard about it.
        spec = f"manager.commit.durable=crash@{TARGET}"
        returncode, committed, stdout = run_driver(
            tmp_path, spec, mode="service"
        )
        assert returncode == CRASH_EXIT_CODE, stdout
        state = recovered_census(tmp_path)
        assert state.spent == TARGET * EPSILON  # the durable commit counts
        assert state.spent >= math.fsum(committed) - 1e-12

    def test_crash_at_scheduler_dispatch(self, tmp_path):
        # Death between admission and execution: the query never touched
        # the budget, so recovery must account only the earlier queries.
        spec = f"scheduler.dispatch=crash@{TARGET}"
        returncode, committed, stdout = run_driver(
            tmp_path, spec, mode="service"
        )
        assert returncode == CRASH_EXIT_CODE, stdout
        state = recovered_census(tmp_path)
        assert state.spent == (TARGET - 1) * EPSILON
        assert state.spent >= math.fsum(committed) - 1e-12
        assert not state.pending

    def test_clean_service_run_recovers_exact(self, tmp_path):
        returncode, committed, stdout = run_driver(tmp_path, mode="service")
        assert returncode == 0, stdout
        assert committed == [EPSILON] * QUERIES
        state = recovered_census(tmp_path)
        assert state.spent == math.fsum(committed)
        assert state.remaining == TOTAL - QUERIES * EPSILON
