"""End-to-end integration tests across module boundaries."""

import numpy as np
import pytest

from repro import (
    AccuracyGoal,
    BudgetDistributor,
    DatasetManager,
    GuptRuntime,
    HelperRange,
    LooseOutputRange,
    QuerySpec,
    TightRange,
    census_adult,
    life_sciences,
)
from repro.estimators import (
    KMeans,
    LogisticRegression,
    Mean,
    Variance,
    classification_accuracy,
    intra_cluster_variance,
    train_test_split,
)
from repro.datasets.table import DataTable
from repro.exceptions import PrivacyBudgetExhausted
from repro.runtime import ComputationManager, InProcessChamber, SubprocessChamber, TimingDefense


class TestCensusWorkflow:
    def test_full_session(self):
        """A complete owner/analyst session over the census data."""
        manager = DatasetManager()
        table = census_adult(num_records=8000, rng=0)
        manager.register("census", table, total_budget=6.0, aged_fraction=0.1, rng=0)
        # The assertion tolerance (±5) sits below the query's noise std
        # (~6.2), so the seed must be one whose Laplace draw is modest.
        runtime = GuptRuntime(manager, rng=2)

        # Query 1: epsilon-specified mean.
        mean_result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
            query_name="mean",
        )
        live = manager.get("census").table.values
        assert mean_result.scalar() == pytest.approx(live.mean(), abs=5.0)

        # Query 2: accuracy-goal variance.
        variance_result = runtime.run(
            "census", Variance(), TightRange((0.0, 150.0**2 / 4)),
            accuracy=AccuracyGoal(rho=0.8, delta=0.2), block_size=50,
            query_name="variance",
        )
        assert variance_result.epsilon_was_estimated

        # Ledger reconciles with budget.
        registered = manager.get("census")
        assert registered.ledger.total_spent == pytest.approx(registered.budget.spent)
        assert set(registered.ledger.by_query()) == {"mean", "variance"}

    def test_distributed_budget_across_queries(self):
        manager = DatasetManager()
        manager.register("census", census_adult(num_records=5000, rng=0), total_budget=3.0)
        runtime = GuptRuntime(manager, rng=2)

        blocks = 5000 // round(5000**0.6)
        specs = [
            QuerySpec("mean", output_width=150.0, num_blocks=blocks),
            QuerySpec("variance", output_width=150.0**2 / 4, num_blocks=blocks),
        ]
        allocations = BudgetDistributor(2.0).allocate(specs)
        programs = {"mean": Mean(), "variance": Variance()}
        ranges = {"mean": (0.0, 150.0), "variance": (0.0, 150.0**2 / 4)}
        for allocation in allocations:
            runtime.run(
                "census",
                programs[allocation.name],
                TightRange(ranges[allocation.name]),
                epsilon=allocation.epsilon,
                query_name=allocation.name,
            )
        assert manager.get("census").budget.spent == pytest.approx(2.0)

    def test_budget_exhaustion_ends_the_session(self):
        manager = DatasetManager()
        manager.register("census", census_adult(num_records=2000, rng=0), total_budget=2.0)
        runtime = GuptRuntime(manager, rng=3)
        runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=1.5)
        with pytest.raises(PrivacyBudgetExhausted):
            runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0)
        # The refused query left no trace.
        assert manager.get("census").budget.spent == pytest.approx(1.5)


class TestMachineLearningWorkflows:
    def test_private_logistic_regression_beats_chance(self):
        dataset = life_sciences(num_records=6000, rng=1)
        train_x, train_y, test_x, test_y = train_test_split(
            dataset.features.values, dataset.labels, rng=0
        )
        packed = DataTable(np.column_stack([train_x, train_y.astype(float)]))
        manager = DatasetManager()
        manager.register("lifesci", packed, total_budget=20.0)
        runtime = GuptRuntime(manager, rng=4)

        trainer = LogisticRegression(num_features=10)
        result = runtime.run(
            "lifesci", trainer,
            TightRange([(-3.0, 3.0)] * trainer.output_dimension),
            epsilon=10.0,
        )
        accuracy = classification_accuracy(result.value, test_x, test_y)
        assert accuracy > 0.6

    def test_private_kmeans_tracks_baseline(self):
        dataset = life_sciences(num_records=6000, num_features=3, num_clusters=3, rng=2)
        data = dataset.features.values
        manager = DatasetManager()
        manager.register("lifesci", dataset.features, total_budget=50.0)
        runtime = GuptRuntime(manager, rng=5)

        program = KMeans(num_clusters=3, num_features=3, iterations=10)
        baseline_icv = intra_cluster_variance(data, program.fit(data))
        bounds = [
            (float(lo), float(hi))
            for lo, hi in zip(data.min(axis=0), data.max(axis=0))
        ] * 3
        result = runtime.run(
            "lifesci", program, TightRange(bounds), epsilon=20.0
        )
        icv = intra_cluster_variance(data, result.reshape(3, 3))
        assert icv < 10 * baseline_icv


class TestChamberIntegration:
    def test_runtime_with_subprocess_chambers(self):
        manager = DatasetManager()
        manager.register("census", census_adult(num_records=500, rng=0), total_budget=50.0)
        runtime = GuptRuntime(
            manager, ComputationManager(SubprocessChamber()), rng=6
        )
        result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=30.0, block_size=25
        )
        live = manager.get("census").table.values
        assert result.failed_blocks == 0
        assert result.scalar() == pytest.approx(live.mean(), abs=5.0)

    def test_runtime_with_timing_defense(self):
        manager = DatasetManager()
        manager.register("census", census_adult(num_records=200, rng=0), total_budget=5.0)
        chamber = InProcessChamber(timing=TimingDefense(cycle_budget=0.5, pad=False))
        runtime = GuptRuntime(manager, ComputationManager(chamber), rng=7)
        result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=2.0, block_size=50
        )
        assert result.failed_blocks == 0

    def test_hanging_program_produces_a_result_anyway(self):
        import time

        manager = DatasetManager()
        manager.register("census", census_adult(num_records=200, rng=0), total_budget=5.0)
        chamber = InProcessChamber(timing=TimingDefense(cycle_budget=0.05, pad=False))
        runtime = GuptRuntime(manager, ComputationManager(chamber), rng=8)

        def hangs_sometimes(block):
            if block.mean() > 38.0:
                time.sleep(0.5)
            return float(block.mean())

        result = runtime.run(
            "census", hangs_sometimes, TightRange((0.0, 150.0)),
            epsilon=2.0, block_size=50,
        )
        # Some blocks were killed, but the query still returned a value
        # inside the plausible range.
        assert result.failed_blocks >= 1
        assert 0.0 <= result.scalar() <= 160.0
