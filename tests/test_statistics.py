"""Unit tests for the statistical estimator programs."""

import numpy as np
import pytest

from repro.estimators.statistics import (
    Count,
    Mean,
    Median,
    Quantile,
    StandardDeviation,
    Variance,
)

DATA = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]])


class TestMean:
    def test_value(self):
        assert Mean()(DATA) == pytest.approx(2.5)

    def test_column_selection(self):
        assert Mean(column=1)(DATA) == pytest.approx(25.0)

    def test_1d_block(self):
        assert Mean()(np.array([1.0, 3.0])) == 2.0

    def test_output_dimension(self):
        assert Mean().output_dimension == 1


class TestMedian:
    def test_value(self):
        assert Median()(DATA) == pytest.approx(2.5)

    def test_odd_count(self):
        assert Median()(np.array([1.0, 100.0, 2.0])) == 2.0


class TestQuantile:
    def test_median_equivalence(self):
        assert Quantile(0.5)(DATA) == Median()(DATA)

    def test_extremes(self):
        assert Quantile(0.0)(DATA) == 1.0
        assert Quantile(1.0)(DATA) == 4.0

    @pytest.mark.parametrize("q", [-0.1, 1.1])
    def test_invalid_q_rejected(self, q):
        with pytest.raises(ValueError):
            Quantile(q)


class TestVarianceAndStd:
    def test_variance(self):
        assert Variance()(DATA) == pytest.approx(np.var([1, 2, 3, 4]))

    def test_std(self):
        assert StandardDeviation()(DATA) == pytest.approx(np.std([1, 2, 3, 4]))

    def test_std_is_sqrt_of_variance(self):
        assert StandardDeviation()(DATA) == pytest.approx(np.sqrt(Variance()(DATA)))


class TestCount:
    def test_fraction_above(self):
        assert Count(threshold=2.0)(DATA) == pytest.approx(0.5)

    def test_fraction_below(self):
        assert Count(threshold=2.0, above=False)(DATA) == pytest.approx(0.5)

    def test_fractions_sum_to_one(self):
        above = Count(threshold=2.5)(DATA)
        below = Count(threshold=2.5, above=False)(DATA)
        assert above + below == pytest.approx(1.0)

    def test_column_selection(self):
        assert Count(threshold=25.0, column=1)(DATA) == pytest.approx(0.5)
