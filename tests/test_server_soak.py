"""HTTP soak: sustained mixed traffic through the network front door.

The over-the-wire sibling of ``tests/test_service_soak.py``: the same
wall-clock duration knob (``REPRO_SOAK_SECONDS``, default 2 so tier-1
stays fast; the CI service job raises it), but every operation travels
through the real asyncio server — enrollment, dataset registration,
seeded and unseeded submissions, long-polls, cancellations and ledger
audits, from **32+ concurrent clients** each holding its own keep-alive
connection.

The accounting check is a *shadow model*: every client records, purely
from wire responses, how much epsilon it believes each dataset charged
it (``epsilon_charged`` of each ``ok`` response — refusals charge
nothing).  After the soak drains, the server's own ledger must agree
with the sum of all clients' shadows **bit-for-bit** per dataset.  Any
drift — a double-charge, a leaked reservation, a charge on a refusal,
a lost ledger entry — breaks the equality.  EPSILON is a binary-exact
float so the sums carry no rounding slack.
"""

from __future__ import annotations

import math
import os
import threading
import time

import numpy as np
import pytest

from repro.observability import MetricsRegistry
from repro.runtime.service import GuptService
from repro.server.client import Backpressure, GuptClient, ServerError
from repro.server.http import GuptHttpServer
from repro.server.protocol import query_request_to_wire

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "2"))
ANALYST_CLIENTS = 32
CANCELLER_CLIENTS = 2
EPSILON = 0.125  # binary-exact; all budgets are small multiples of it
ADMIN = "soak-admin"
RANGE = (0.0, 10.0)


@pytest.mark.parametrize("durable", [False, True], ids=["in-memory", "journaled"])
def test_http_soak_zero_budget_drift(durable, tmp_path):
    registry = MetricsRegistry()
    state_dir = str(tmp_path) if durable else None
    service = GuptService(
        metrics=registry,
        rng=90210,
        scheduler_workers=4,
        max_inflight=16,
        queue_depth=256,
        query_timeout=30.0,
        state_dir=state_dir,
    )
    server = GuptHttpServer(
        service, admin_token=ADMIN, metrics=registry, state_dir=state_dir
    )
    host, port = server.start()

    bootstrap = GuptClient(host, port)
    owner_token = bootstrap.enroll("owner", "owner", ADMIN)
    analyst_tokens = [
        bootstrap.enroll("analyst", f"analyst-{i}", ADMIN)
        for i in range(ANALYST_CLIENTS)
    ]
    canceller_tokens = [
        bootstrap.enroll("analyst", f"canceller-{i}", ADMIN)
        for i in range(CANCELLER_CLIENTS)
    ]
    bootstrap.close()

    table_rng = np.random.default_rng(1)
    datasets: list[str] = []
    totals: dict[str, float] = {}
    datasets_lock = threading.Lock()
    # The shadow model: dataset -> fsum-able list of charges the clients
    # believe they paid, reconstructed only from wire responses.
    shadow: dict[str, list[float]] = {}
    shadow_lock = threading.Lock()

    def shadow_charge(name: str, epsilon: float) -> None:
        with shadow_lock:
            shadow.setdefault(name, []).append(epsilon)

    def register(client: GuptClient, index: int) -> None:
        name = f"soak-{index}"
        total = EPSILON * int(table_rng.integers(4, 40))
        values = table_rng.uniform(*RANGE, size=(64, 1)).tolist()
        client.register_dataset(
            name, values, total_budget=total,
            column_names=["x"], input_ranges=[list(RANGE)],
        )
        with datasets_lock:
            totals[name] = total
            datasets.append(name)

    deadline = time.monotonic() + SOAK_SECONDS
    errors: list[BaseException] = []
    unresolved: list[str] = []

    def pick_dataset(local) -> str:
        with datasets_lock:
            return datasets[int(local.integers(0, len(datasets)))]

    def query_body(name: str, step: int, who: str, seed) -> dict:
        return query_request_to_wire(
            name, {"name": "mean"}, [RANGE],
            epsilon=EPSILON, block_size=8,
            query_name=f"{who}-{step}", seed=seed,
        )

    def submit_obeying_backpressure(client: GuptClient, body: dict) -> int | None:
        """Submit, honoring Retry-After; None when refused non-retryably."""
        for _ in range(1000):
            try:
                return client.submit(body)
            except Backpressure as refusal:
                time.sleep(min(refusal.retry_after, 0.05))
        return None

    def owner_loop() -> None:
        client = GuptClient(host, port, token=owner_token)
        try:
            register(client, 0)
            register(client, 1)
            started.set()
            index = 2
            local = np.random.default_rng(77)
            while time.monotonic() < deadline:
                register(client, index)
                index += 1
                name = pick_dataset(local)
                entries = client.ledger(name)
                description = client.describe_dataset(name)
                audited = math.fsum(e["epsilon"] for e in entries)
                if audited > totals[name]:
                    raise AssertionError(f"{name} ledger exceeds its budget")
                if description["remaining_budget"] < 0.0:
                    raise AssertionError(f"{name} advertises negative budget")
                time.sleep(0.05)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
        finally:
            started.set()
            client.close()

    def analyst_loop(slot: int, token: str) -> None:
        client = GuptClient(host, port, token=token)
        local = np.random.default_rng(5000 + slot)
        try:
            step = 0
            while time.monotonic() < deadline:
                name = pick_dataset(local)
                seed = int(local.integers(0, 2**31)) if step % 2 else None
                query_id = submit_obeying_backpressure(
                    client, query_body(name, step, f"analyst-{slot}", seed)
                )
                if query_id is None:
                    step += 1
                    continue
                response = client.result(query_id, timeout=30.0)
                if response is None:
                    unresolved.append(f"analyst-{slot}-{step}")
                elif response.ok:
                    if response.epsilon_charged != EPSILON:
                        raise AssertionError(
                            f"wrong charge: {response.epsilon_charged}"
                        )
                    shadow_charge(name, response.epsilon_charged)
                elif response.epsilon_charged != 0.0:
                    raise AssertionError("a refusal charged budget")
                step += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
        finally:
            client.close()

    def canceller_loop(slot: int, token: str) -> None:
        """Submit-then-cancel races dispatch; either outcome must keep
        the books straight (an ok response charges, a cancelled one
        cannot)."""
        client = GuptClient(host, port, token=token)
        local = np.random.default_rng(666 + slot)
        try:
            step = 0
            while time.monotonic() < deadline:
                name = pick_dataset(local)
                query_id = submit_obeying_backpressure(
                    client, query_body(name, step, f"canceller-{slot}", None)
                )
                if query_id is None:
                    step += 1
                    continue
                client.cancel(query_id)  # races dispatch; False is fine
                response = client.result(query_id, timeout=30.0)
                if response is None:
                    unresolved.append(f"canceller-{slot}-{step}")
                elif response.ok:
                    shadow_charge(name, response.epsilon_charged)
                elif response.epsilon_charged != 0.0:
                    raise AssertionError("a cancelled query charged budget")
                step += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
        finally:
            client.close()

    started = threading.Event()
    threads = [threading.Thread(target=owner_loop, name="owner")]
    threads[0].start()
    started.wait()  # first datasets exist before analysts go
    threads += [
        threading.Thread(target=analyst_loop, args=(i, t), name=f"analyst-{i}")
        for i, t in enumerate(analyst_tokens)
    ]
    threads += [
        threading.Thread(target=canceller_loop, args=(i, t), name=f"canceller-{i}")
        for i, t in enumerate(canceller_tokens)
    ]
    for thread in threads[1:]:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    assert not unresolved, unresolved

    # Zero drift: the server's ledger per dataset equals the sum of the
    # clients' shadow charges, bit-for-bit.
    audit = GuptClient(host, port, token=owner_token)
    for name in datasets:
        entries = audit.ledger(name)
        server_spent = math.fsum(e["epsilon"] for e in entries)
        shadow_spent = math.fsum(shadow.get(name, []))
        assert server_spent == shadow_spent, (
            f"{name}: server ledger {server_spent} != shadow {shadow_spent}"
        )
        assert server_spent <= totals[name]
        description = audit.describe_dataset(name)
        assert description["remaining_budget"] >= 0.0
        assert len(entries) == len(shadow.get(name, []))

    if durable:
        report = audit.fsck()
        assert report["exists"] and not report["torn"]
        assert sorted(report["datasets"]) == sorted(datasets)
        for name, state in report["datasets"].items():
            assert state["spent"] == math.fsum(shadow.get(name, []))

    audit.close()
    server.stop()
    service.close()

    # The drained scheduler settled every submission exactly once.
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["scheduler.queue_depth"] == 0.0
    assert snapshot["gauges"]["scheduler.running"] == 0.0
    assert snapshot["gauges"]["http.open_connections"] == 0.0
    counters = snapshot["counters"]
    submitted = counters["scheduler.submitted"]
    settled = sum(
        value for key, value in counters.items()
        if key.startswith("scheduler.completed")
    )
    assert settled == submitted
    assert submitted > 0
