"""End-to-end determinism: the wire adds nothing and loses nothing.

A seeded query answered over HTTP must be *bit-identical* to the same
request executed in-process through ``GuptService.execute`` — across
every execution backend.  This is the strongest possible statement that
the network tier is pure plumbing: JSON float encoding (repr shortest
round-trip), request parsing, scheduling and response decoding are all
exactly transparent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.service import GuptService, QueryRequest, QueryResponse
from repro.server import protocol
from repro.server.client import GuptClient
from repro.server.http import GuptHttpServer

ADMIN = "determinism-admin"
RANGE = (0.0, 100.0)
SEEDS = (7, 1234, 987654321)


def make_service(backend: str) -> GuptService:
    service = GuptService(rng=0, backend=backend, workers=2)
    owner = service.enroll("owner", "o")
    rng = np.random.default_rng(42)
    from repro.datasets.table import DataTable

    table = DataTable(rng.uniform(*RANGE, size=500).tolist(),
                      column_names=["x"], input_ranges=[RANGE])
    service.register_dataset(owner.token, "census", table, total_budget=100.0)
    return service


def wire_body(seed: int, program: str = "mean", **extra) -> dict:
    return protocol.query_request_to_wire(
        "census", {"name": program, **extra.pop("params", {})}, [RANGE],
        epsilon=0.5, seed=seed, **extra,
    )


@pytest.mark.parametrize("backend", ["serial", "thread", "pool", "vectorized"])
def test_http_matches_in_process_execute(backend):
    service = make_service(backend)
    server = GuptHttpServer(service, admin_token=ADMIN)
    host, port = server.start()
    try:
        client = GuptClient(host, port)
        client.token = client.enroll("analyst", "remote", ADMIN)
        in_process_token = service.enroll("analyst", "local").token
        for seed in SEEDS:
            over_wire = client.result(client.submit(wire_body(seed)))
            request = protocol.parse_query_request(wire_body(seed))
            in_process = service.execute(in_process_token, request)
            assert over_wire.ok and in_process.ok
            # Bit-identity, not approx: tuple equality on Python floats.
            assert over_wire.value == in_process.value
            assert over_wire.epsilon_charged == in_process.epsilon_charged
            assert over_wire == in_process
        client.close()
    finally:
        server.stop()
        service.close()


@pytest.mark.parametrize(
    "program, params",
    [
        ("mean", {}),
        ("median", {}),
        ("std", {}),
        ("quantile", {"q": 0.9}),
        ("count_above", {"threshold": 50.0}),
    ],
)
def test_every_wire_program_is_deterministic(program, params):
    service = make_service("vectorized")
    server = GuptHttpServer(service, admin_token=ADMIN)
    host, port = server.start()
    try:
        client = GuptClient(host, port)
        client.token = client.enroll("analyst", "remote", ADMIN)
        body = wire_body(31337, program=program, params=params)
        first = client.result(client.submit(body))
        local = service.execute(
            service.enroll("analyst", "local").token,
            protocol.parse_query_request(body),
        )
        assert first.ok and local.ok
        assert first.value == local.value
        client.close()
    finally:
        server.stop()
        service.close()


def test_backends_agree_over_the_wire():
    """The released value for one seed is identical whichever backend
    serves it — the PR 5 cross-backend guarantee holds through HTTP."""
    released: dict[str, tuple] = {}
    for backend in ("serial", "thread", "pool", "vectorized"):
        service = make_service(backend)
        server = GuptHttpServer(service, admin_token=ADMIN)
        host, port = server.start()
        try:
            client = GuptClient(host, port)
            client.token = client.enroll("analyst", "a", ADMIN)
            response = client.result(client.submit(wire_body(2024)))
            assert response.ok
            released[backend] = response.value
            client.close()
        finally:
            server.stop()
            service.close()
    assert len(set(released.values())) == 1, released


def test_unseeded_queries_differ():
    """Sanity: without a seed the noise is fresh per query, so identical
    requests release different values (the privacy mechanism is live)."""
    service = make_service("serial")
    server = GuptHttpServer(service, admin_token=ADMIN)
    host, port = server.start()
    try:
        client = GuptClient(host, port)
        client.token = client.enroll("analyst", "a", ADMIN)
        body = protocol.query_request_to_wire(
            "census", {"name": "mean"}, [RANGE], epsilon=0.5,
        )
        first = client.result(client.submit(body))
        second = client.result(client.submit(body))
        assert first.ok and second.ok
        assert first.value != second.value
        client.close()
    finally:
        server.stop()
        service.close()
