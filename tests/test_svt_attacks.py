"""SVT attack-harness regressions: broken variants are *detected*.

Chen & Machanavajjhala showed that most published sparse-vector
variants are not ε-DP.  This battery drives the deliberately broken
variants kept in :mod:`repro.attacks.svt_variants` through the attack
harness's distinguishers and the empirical DP verifier, and pins two
facts simultaneously:

* every broken variant's observed privacy loss exceeds its claimed ε
  by more than the flag factor — the verifier catches them; and
* the shipped :class:`repro.optimizer.svt.SparseVector`, attacked by
  the *same* distinguishers, stays under the claimed ε — the verifier
  is not crying wolf.

Everything is seeded, so the observed epsilons are deterministic and
the flags are regression-stable, not flaky statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    BudgetRefundSVT,
    NoQueryNoiseSVT,
    SvtAttackOutcome,
    UnboundedPositivesSVT,
    run_svt_attacks,
)
from repro.attacks.harness import (
    SVT_FLAG_FACTOR,
    svt_alternating_pairs_epsilon,
    svt_paired_query_epsilon,
)
from repro.audit.dp_verifier import empirical_epsilon_discrete
from repro.exceptions import (
    InvalidPrivacyParameter,
    SvtError,
    SvtSessionExhausted,
)
from repro.optimizer.svt import SparseVector


@pytest.fixture(scope="module")
def battery() -> list[SvtAttackOutcome]:
    return run_svt_attacks()


class TestBattery:
    def test_every_broken_variant_is_flagged(self, battery):
        broken = [o for o in battery if o.variant != "sparse_vector"]
        assert {o.variant for o in broken} == {
            "no_query_noise", "budget_refund", "unbounded_positives"
        }
        for outcome in broken:
            assert outcome.flagged, outcome
            assert (
                outcome.observed_epsilon
                > SVT_FLAG_FACTOR * outcome.claimed_epsilon
            ), outcome

    def test_shipped_variant_survives_both_distinguishers(self, battery):
        shipped = [o for o in battery if o.variant == "sparse_vector"]
        assert {o.attack for o in shipped} == {
            "paired_query", "alternating_pairs"
        }
        for outcome in shipped:
            assert not outcome.flagged, outcome
            # Not merely under the flag bar: under the claimed ε itself
            # (the estimator converges from below for a true ε-DP
            # mechanism at these trial counts).
            assert outcome.observed_epsilon <= outcome.claimed_epsilon

    def test_battery_is_deterministic(self, battery):
        assert run_svt_attacks() == battery

    def test_flag_margins_are_wide(self, battery):
        # Regression guard against silent distinguisher decay: every
        # broken variant should exceed the bar with >25% headroom, and
        # the shipped variant should stay under half of it.
        for outcome in battery:
            bar = SVT_FLAG_FACTOR * outcome.claimed_epsilon
            if outcome.variant == "sparse_vector":
                assert outcome.observed_epsilon < 0.5 * bar, outcome
            else:
                assert outcome.observed_epsilon > 1.25 * bar, outcome


class TestDistinguishers:
    def test_paired_query_separates(self):
        correct = svt_paired_query_epsilon(SparseVector, trials=800)
        broken = svt_paired_query_epsilon(NoQueryNoiseSVT, trials=800)
        assert broken > 4 * correct

    def test_alternating_pairs_separates(self):
        correct = svt_alternating_pairs_epsilon(SparseVector, trials=800)
        refund = svt_alternating_pairs_epsilon(BudgetRefundSVT, trials=800)
        unbounded = svt_alternating_pairs_epsilon(
            UnboundedPositivesSVT, count=1, trials=800
        )
        assert refund > 2 * correct
        assert unbounded > 2 * correct


class TestDiscreteVerifier:
    def test_identical_mechanisms_read_near_zero(self):
        generator = np.random.default_rng(0)

        def coin(_data):
            return bool(generator.uniform() < 0.5)

        estimate = empirical_epsilon_discrete(
            coin, np.array([0.0]), np.array([1.0]), trials=2000
        )
        assert estimate < 0.2

    def test_disjoint_supports_read_large(self):
        def leak(data):
            return float(np.sum(data))

        estimate = empirical_epsilon_discrete(
            leak, np.array([0.0]), np.array([1.0]), trials=2000
        )
        assert estimate > 5.0

    def test_requires_enough_trials(self):
        with pytest.raises(ValueError):
            empirical_epsilon_discrete(
                lambda d: 0, np.array([0.0]), np.array([1.0]), trials=5
            )


class TestVariantMechanics:
    def test_no_query_noise_answers_are_deterministic_given_threshold(self):
        session = NoQueryNoiseSVT(
            threshold=0.0, sensitivity=1.0, epsilon=1.0, count=5,
            rng=np.random.default_rng(3),
        )
        # Two probes with the same exact value always agree — exactly
        # the property the paired-query distinguisher exploits.
        assert session.probe(10.0) == session.probe(10.0)

    def test_unbounded_never_exhausts(self):
        session = UnboundedPositivesSVT(
            threshold=-1000.0, sensitivity=1.0, epsilon=1.0, count=1,
            rng=np.random.default_rng(4),
        )
        for _ in range(10):
            assert session.probe(0.0)
        assert not session.exhausted
        assert session.positives == 10

    def test_budget_refund_respects_cutoff(self):
        # The refund variant's flaw is its noise scale, not the cutoff:
        # exhaustion still works, so the harness can attack it under
        # the same session protocol as the correct variant.
        session = BudgetRefundSVT(
            threshold=-1000.0, sensitivity=1.0, epsilon=1.0, count=2,
            rng=np.random.default_rng(5),
        )
        assert session.probe(0.0) and session.probe(0.0)
        with pytest.raises(SvtSessionExhausted):
            session.probe(0.0)


class TestShippedSparseVector:
    def test_budget_split_and_per_positive_charge(self):
        session = SparseVector(
            threshold=0.0, sensitivity=1.0, epsilon=1.0, count=4,
            rng=np.random.default_rng(6), threshold_fraction=0.25,
        )
        assert session.epsilon_threshold == pytest.approx(0.25)
        assert session.epsilon_answers == pytest.approx(0.75)
        assert session.epsilon_per_positive == pytest.approx(0.1875)

    def test_hard_cutoff(self):
        session = SparseVector(
            threshold=-1000.0, sensitivity=1.0, epsilon=1.0, count=3,
            rng=np.random.default_rng(7),
        )
        positives = sum(session.probe(0.0) for _ in range(3))
        assert positives == 3
        assert session.exhausted
        with pytest.raises(SvtSessionExhausted):
            session.probe(0.0)

    def test_seeded_transcript_reproducible(self):
        def transcript(seed):
            session = SparseVector(
                threshold=0.0, sensitivity=1.0, epsilon=0.5, count=10,
                rng=np.random.default_rng(seed),
            )
            return [session.probe(v) for v in np.linspace(-2, 2, 10)]

        assert transcript(11) == transcript(11)

    def test_parameter_validation(self):
        good = dict(threshold=0.0, sensitivity=1.0, epsilon=1.0)
        with pytest.raises(SvtError):
            SparseVector(**{**good, "threshold": float("nan")})
        with pytest.raises(SvtError):
            SparseVector(**{**good, "sensitivity": 0.0})
        with pytest.raises(InvalidPrivacyParameter):
            SparseVector(**{**good, "epsilon": -1.0})
        with pytest.raises(SvtError):
            SparseVector(**good, count=0)
        with pytest.raises(SvtError):
            SparseVector(**good, threshold_fraction=1.0)
        with pytest.raises(SvtError):
            SparseVector(
                threshold=0.0, sensitivity=1.0, epsilon=1.0,
                rng=np.random.default_rng(0),
            ).probe(float("inf"))


class TestContainment:
    def test_broken_variants_unreachable_from_service_and_runtime(self):
        # The service layers must never import the broken variants
        # (docstrings may *mention* them as a warning; code may not
        # reach them): the only route is the attack harness.
        import ast
        import inspect

        import repro.core.gupt as gupt
        import repro.runtime.scheduler as scheduler
        import repro.runtime.service as service
        import repro.server.http as http
        import repro.server.protocol as protocol

        for module in (service, scheduler, gupt, http, protocol):
            tree = ast.parse(inspect.getsource(module))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                    names += [alias.name for alias in node.names]
                elif isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                else:
                    continue
                for name in names:
                    assert "svt_variants" not in name, (module, name)
                    assert not name.startswith("repro.attacks"), (module, name)
