"""Unit tests for the Laplace mechanism."""

import numpy as np
import pytest

from repro.exceptions import InvalidPrivacyParameter
from repro.mechanisms.laplace import LaplaceMechanism, laplace_noise


class TestLaplaceNoise:
    def test_zero_scale_is_exact_zero(self):
        assert laplace_noise(0.0) == 0.0

    def test_zero_scale_vector(self):
        noise = laplace_noise(0.0, size=5)
        assert np.array_equal(noise, np.zeros(5))

    def test_shape(self):
        assert np.shape(laplace_noise(1.0, size=(3, 2), rng=0)) == (3, 2)

    def test_scalar_when_size_none(self):
        assert np.isscalar(laplace_noise(1.0, rng=0)) or np.ndim(laplace_noise(1.0, rng=0)) == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            laplace_noise(-1.0)

    def test_infinite_scale_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            laplace_noise(float("inf"))

    def test_seeded_reproducibility(self):
        a = laplace_noise(2.0, size=10, rng=7)
        b = laplace_noise(2.0, size=10, rng=7)
        assert np.array_equal(a, b)

    def test_empirical_std(self):
        draws = laplace_noise(1.0, size=200_000, rng=1)
        # Laplace(b) has std sqrt(2)*b.
        assert np.std(draws) == pytest.approx(np.sqrt(2.0), rel=0.02)

    def test_empirical_mean_centered(self):
        draws = laplace_noise(3.0, size=200_000, rng=2)
        assert abs(np.mean(draws)) < 0.05


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        mech = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        assert mech.scale == pytest.approx(4.0)

    def test_noise_std(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        assert mech.noise_std == pytest.approx(np.sqrt(2.0))

    def test_release_scalar_returns_float(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        assert isinstance(mech.release(5.0, rng=0), float)

    def test_release_vector_shape(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        out = mech.release(np.zeros(4), rng=0)
        assert out.shape == (4,)

    def test_release_is_unbiased(self):
        mech = LaplaceMechanism(epsilon=2.0, sensitivity=1.0)
        rng = np.random.default_rng(3)
        draws = [mech.release(10.0, rng=rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(10.0, abs=0.05)

    def test_zero_sensitivity_releases_exactly(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=0.0)
        assert mech.release(42.0, rng=0) == 42.0

    @pytest.mark.parametrize("epsilon", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_epsilon_rejected(self, epsilon):
        with pytest.raises(InvalidPrivacyParameter):
            LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)

    @pytest.mark.parametrize("sensitivity", [-0.1, float("nan"), float("inf")])
    def test_invalid_sensitivity_rejected(self, sensitivity):
        with pytest.raises(InvalidPrivacyParameter):
            LaplaceMechanism(epsilon=1.0, sensitivity=sensitivity)

    def test_interval_contains_value(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        lo, hi = mech.interval(5.0, confidence=0.95)
        assert lo < 5.0 < hi

    def test_interval_widens_with_confidence(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        narrow = mech.interval(0.0, confidence=0.5)
        wide = mech.interval(0.0, confidence=0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_interval_coverage_empirical(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        rng = np.random.default_rng(4)
        lo, hi = mech.interval(0.0, confidence=0.9)
        draws = np.array([mech.release(0.0, rng=rng) for _ in range(10_000)])
        coverage = np.mean((draws >= lo) & (draws <= hi))
        assert coverage == pytest.approx(0.9, abs=0.02)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_invalid_confidence_rejected(self, confidence):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        with pytest.raises(ValueError):
            mech.interval(0.0, confidence=confidence)

    def test_higher_epsilon_means_less_noise(self):
        loose = LaplaceMechanism(epsilon=0.1, sensitivity=1.0)
        tight = LaplaceMechanism(epsilon=10.0, sensitivity=1.0)
        assert tight.noise_std < loose.noise_std
