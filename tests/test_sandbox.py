"""Unit tests for the isolation chambers."""

import os
import time
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.runtime.policy import MACPolicy
from repro.runtime.sandbox import InProcessChamber, SubprocessChamber
from repro.runtime.timing import TimingDefense


class AlwaysExceededTiming(TimingDefense):
    """A budget that every elapsed time exceeds — deterministic post-hoc
    kill trigger without racing real clocks."""

    def exceeded(self, elapsed: float) -> bool:  # noqa: ARG002
        return True

BLOCK = np.linspace(0.0, 10.0, 20).reshape(-1, 1)
FALLBACK = np.array([5.0])


def mean_program(block):
    return float(np.mean(block))


def crashing_program(block):
    raise RuntimeError("boom")


def wrong_shape_program(block):
    return [1.0, 2.0]


def nan_program(block):
    return float("nan")


def slow_program(block):
    time.sleep(0.3)
    return float(np.mean(block))


@dataclass
class StatefulProgram:
    output_dimension: int = 1
    calls: list = field(default_factory=list)

    def __call__(self, block):
        self.calls.append(len(block))
        return float(np.mean(block))


class TestInProcessChamber:
    def test_successful_run(self):
        chamber = InProcessChamber()
        result = chamber.run_block(mean_program, BLOCK, 1, FALLBACK)
        assert result.succeeded
        assert result.output[0] == pytest.approx(BLOCK.mean())

    def test_crash_falls_back(self):
        chamber = InProcessChamber()
        result = chamber.run_block(crashing_program, BLOCK, 1, FALLBACK)
        assert not result.succeeded
        assert result.output[0] == 5.0

    def test_wrong_shape_falls_back(self):
        chamber = InProcessChamber()
        result = chamber.run_block(wrong_shape_program, BLOCK, 1, FALLBACK)
        assert not result.succeeded

    def test_nan_output_falls_back(self):
        chamber = InProcessChamber()
        result = chamber.run_block(nan_program, BLOCK, 1, FALLBACK)
        assert not result.succeeded

    def test_non_numeric_output_falls_back(self):
        chamber = InProcessChamber()
        result = chamber.run_block(lambda b: "text", BLOCK, 1, FALLBACK)
        assert not result.succeeded

    def test_timeout_kills_and_falls_back(self):
        chamber = InProcessChamber(timing=TimingDefense(cycle_budget=0.05, pad=False))
        result = chamber.run_block(slow_program, BLOCK, 1, FALLBACK)
        assert result.killed
        assert result.output[0] == 5.0

    def test_padding_fixes_observable_runtime(self):
        chamber = InProcessChamber(timing=TimingDefense(cycle_budget=0.1, pad=True))
        started = time.perf_counter()
        chamber.run_block(mean_program, BLOCK, 1, FALLBACK)
        elapsed = time.perf_counter() - started
        assert elapsed >= 0.095

    def test_fresh_instance_prevents_state_carryover(self):
        chamber = InProcessChamber(fresh_instance=True)
        program = StatefulProgram()
        chamber.run_block(program, BLOCK, 1, FALLBACK)
        chamber.run_block(program, BLOCK, 1, FALLBACK)
        # The attacker-held original saw nothing.
        assert program.calls == []

    def test_shared_instance_mode_leaks_state(self):
        # Negative control: turning the defense off shows the leak the
        # defense exists to stop.
        chamber = InProcessChamber(fresh_instance=False)
        program = StatefulProgram()
        chamber.run_block(program, BLOCK, 1, FALLBACK)
        assert program.calls == [20]

    def test_pickled_bytes_cached_across_blocks(self):
        # The program serializes once; later blocks reuse the bytes.
        chamber = InProcessChamber()
        program = StatefulProgram()
        chamber.run_block(program, BLOCK, 1, FALLBACK)
        first_cache = chamber._pickle_cache
        assert first_cache[0] is program and first_cache[1] is not None
        chamber.run_block(program, BLOCK, 1, FALLBACK)
        assert chamber._pickle_cache is first_cache
        assert program.calls == []  # isolation intact on the cached path

    def test_unpicklable_program_falls_back_to_deepcopy(self):
        # A program holding a lambda cannot pickle; deepcopy still gives
        # every block a fresh instance.
        @dataclass
        class Unpicklable:
            hook: object = field(default_factory=lambda: (lambda x: x))
            calls: list = field(default_factory=list)

            def __call__(self, block):
                self.calls.append(len(block))
                return float(np.mean(block))

        chamber = InProcessChamber()
        program = Unpicklable()
        result = chamber.run_block(program, BLOCK, 1, FALLBACK)
        assert result.succeeded
        assert chamber._pickle_cache == (program, None)
        assert program.calls == []  # still isolated via deepcopy

    def test_policy_blocks_forbidden_write(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        chamber = InProcessChamber(policy=MACPolicy(scratch_dir=scratch))
        leak_path = tmp_path / "leak.txt"

        def leaky(block):
            with open(leak_path, "w") as fh:
                fh.write("secret")
            return 0.0

        result = chamber.run_block(leaky, BLOCK, 1, FALLBACK)
        assert not result.succeeded  # SandboxViolation -> fallback
        assert not leak_path.exists()

    def test_multidimensional_output(self):
        chamber = InProcessChamber()
        result = chamber.run_block(
            lambda b: [b.mean(), b.std()], BLOCK, 2, np.array([0.0, 0.0])
        )
        assert result.succeeded
        assert result.output.shape == (2,)


class TestSubprocessChamber:
    def test_successful_run(self):
        chamber = SubprocessChamber()
        result = chamber.run_block(mean_program, BLOCK, 1, FALLBACK)
        assert result.succeeded
        assert result.output[0] == pytest.approx(BLOCK.mean())

    def test_crash_falls_back(self):
        chamber = SubprocessChamber()
        result = chamber.run_block(crashing_program, BLOCK, 1, FALLBACK)
        assert not result.succeeded
        assert result.output[0] == 5.0

    def test_timeout_kills_child(self):
        chamber = SubprocessChamber(timing=TimingDefense(cycle_budget=0.1, pad=False))
        started = time.perf_counter()
        result = chamber.run_block(slow_program, BLOCK, 1, FALLBACK)
        elapsed = time.perf_counter() - started
        assert result.killed
        assert elapsed < 0.29  # killed before the 0.3s sleep finished

    def test_process_isolation_blocks_global_state(self):
        # Module-global writes die with the forked child — the variant
        # of the state attack that in-process copying cannot stop.
        from repro.attacks.state_attack import (
            GlobalChannelProgram,
            read_global_channel,
            reset_global_channel,
        )

        reset_global_channel()
        chamber = SubprocessChamber()
        target = float(BLOCK[3, 0])
        chamber.run_block(GlobalChannelProgram(target=target), BLOCK, 1, FALLBACK)
        assert read_global_channel() is False
        reset_global_channel()

    def test_wrong_shape_falls_back(self):
        chamber = SubprocessChamber()
        result = chamber.run_block(wrong_shape_program, BLOCK, 1, FALLBACK)
        assert not result.succeeded

    def test_scratch_wiped_between_blocks(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        chamber = SubprocessChamber(policy=policy)
        scratch_file = tmp_path / "state.txt"

        def writes_scratch(block):
            scratch_file.write_text("block state")
            return 0.0

        chamber.run_block(writes_scratch, BLOCK, 1, FALLBACK)
        assert not scratch_file.exists()


class TestTimingParityAcrossChambers:
    """Satellite: kill semantics must be backend-independent.

    ``InProcessChamber`` always applied a post-hoc ``exceeded()`` check;
    ``SubprocessChamber`` used to kill only a still-alive child, so a
    block whose result arrived *after* the budget was killed by one
    backend and released by the other.  Both must now agree.
    """

    @pytest.mark.parametrize("chamber_cls", [InProcessChamber, SubprocessChamber])
    def test_post_hoc_budget_overrun_is_killed(self, chamber_cls):
        timing = AlwaysExceededTiming(cycle_budget=30.0, pad=False)
        chamber = chamber_cls(timing=timing)
        # The program completes well inside the 30s join window, so only
        # the post-hoc check can mark it killed.
        result = chamber.run_block(mean_program, BLOCK, 1, FALLBACK)
        assert result.killed
        assert not result.succeeded
        assert result.output[0] == FALLBACK[0]


class TestSpawnFailureCleanup:
    """Satellite: ``process.start()`` raising must not leak pipe fds."""

    def test_crash_at_spawn_yields_fallback(self):
        chamber = SubprocessChamber(start_method="spawn")
        # Lambdas cannot cross a spawn boundary: start() raises while
        # pickling the process object.
        result = chamber.run_block(lambda b: 0.0, BLOCK, 1, FALLBACK)
        assert not result.succeeded
        assert not result.killed
        assert result.output[0] == FALLBACK[0]

    def test_no_fd_leak_when_spawn_raises(self):
        chamber = SubprocessChamber(start_method="spawn")
        # Warm-up: a successful spawn starts multiprocessing's helper
        # processes (resource tracker) whose fds would otherwise skew
        # the count below.
        chamber.run_block(mean_program, BLOCK, 1, FALLBACK)
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(5):
            chamber.run_block(lambda b: 0.0, BLOCK, 1, FALLBACK)
        after = len(os.listdir("/proc/self/fd"))
        assert after <= before
