"""Unit tests for the GUPT-tight/loose/helper range strategies."""

import numpy as np
import pytest

from repro.core.range_estimation import (
    HelperRange,
    LooseOutputRange,
    RangeContext,
    TightRange,
)
from repro.exceptions import InvalidRange


def make_context(
    values=None,
    input_ranges=None,
    output_dimension=1,
    outputs=None,
    blocks_per_record=1,
):
    values = np.asarray(values if values is not None else np.linspace(0, 100, 200))
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    if input_ranges is None:
        input_ranges = (None,) * values.shape[1]

    def block_outputs_fn(fallback):
        if outputs is None:
            raise AssertionError("strategy should not sample blocks")
        return np.asarray(outputs, dtype=float)

    return RangeContext(
        input_values=values,
        input_ranges=tuple(input_ranges),
        output_dimension=output_dimension,
        block_outputs_fn=block_outputs_fn,
        blocks_per_record=blocks_per_record,
    )


class TestTightRange:
    def test_zero_cost(self):
        strategy = TightRange((0.0, 10.0))
        estimate = strategy.estimate(make_context(), epsilon=0.0)
        assert estimate.epsilon_spent == 0.0
        assert estimate.ranges[0].width == 10.0

    def test_budget_fraction_is_zero(self):
        assert TightRange((0.0, 1.0)).budget_fraction == 0.0

    def test_dimension_mismatch_rejected(self):
        strategy = TightRange([(0.0, 1.0)] * 2)
        with pytest.raises(InvalidRange):
            strategy.estimate(make_context(output_dimension=3), epsilon=0.0)


class TestLooseOutputRange:
    def test_budget_fraction_is_half(self):
        assert LooseOutputRange((0.0, 1.0)).budget_fraction == 0.5

    def test_estimates_interquartile_range_of_outputs(self):
        rng = np.random.default_rng(0)
        outputs = rng.normal(50.0, 5.0, size=(200, 1))
        strategy = LooseOutputRange((0.0, 100.0))
        context = make_context(outputs=outputs)
        estimate = strategy.estimate(context, epsilon=50.0, rng=rng)
        assert estimate.epsilon_spent == 50.0
        assert estimate.ranges[0].lo == pytest.approx(np.percentile(outputs, 25), abs=2)
        assert estimate.ranges[0].hi == pytest.approx(np.percentile(outputs, 75), abs=2)

    def test_estimated_range_within_loose_bounds(self):
        rng = np.random.default_rng(1)
        outputs = rng.normal(0.0, 30.0, size=(100, 1))
        strategy = LooseOutputRange((-10.0, 10.0))
        estimate = strategy.estimate(make_context(outputs=outputs), epsilon=1.0, rng=rng)
        assert -10.0 <= estimate.ranges[0].lo <= estimate.ranges[0].hi <= 10.0

    def test_multidimensional_outputs(self):
        rng = np.random.default_rng(2)
        outputs = np.column_stack([
            rng.normal(10, 1, 300), rng.normal(-10, 1, 300),
        ])
        strategy = LooseOutputRange([(-50.0, 50.0)] * 2)
        estimate = strategy.estimate(
            make_context(outputs=outputs, output_dimension=2), epsilon=100.0, rng=rng
        )
        assert estimate.ranges[0].midpoint == pytest.approx(10.0, abs=2.0)
        assert estimate.ranges[1].midpoint == pytest.approx(-10.0, abs=2.0)

    def test_wider_percentiles_supported(self):
        rng = np.random.default_rng(3)
        outputs = rng.uniform(0, 100, size=(500, 1))
        narrow = LooseOutputRange((0.0, 100.0))
        wide = LooseOutputRange((0.0, 100.0), lower_percentile=5, upper_percentile=95)
        n = narrow.estimate(make_context(outputs=outputs), epsilon=100.0, rng=rng)
        w = wide.estimate(make_context(outputs=outputs), epsilon=100.0, rng=rng)
        assert w.ranges[0].width > n.ranges[0].width

    def test_dimension_mismatch_rejected(self):
        strategy = LooseOutputRange((0.0, 1.0))
        with pytest.raises(InvalidRange):
            strategy.estimate(
                make_context(output_dimension=2, outputs=np.zeros((5, 2))),
                epsilon=1.0,
            )


class TestLooseRangeGammaSensitivity:
    """Regression for the gamma-resampling privacy bug (Claim 1 audit).

    Under gamma-resampling one record sits in gamma blocks, so it moves
    up to gamma of the block outputs GUPT-loose privatizes — every rank
    in the percentile mechanism's order statistics shifts by gamma, not
    1.  The strategy must run each percentile estimate at
    ``epsilon / (dims * gamma)``; pre-fix it ignored gamma entirely and
    the released range was only ``(gamma * epsilon)``-DP.
    """

    @staticmethod
    def _mechanism_epsilons(monkeypatch, blocks_per_record, epsilon, dims=1):
        import repro.core.range_estimation as range_estimation

        captured = []
        real = range_estimation.dp_percentile_range

        def spy(values, eps, *args, **kwargs):
            captured.append(eps)
            return real(values, eps, *args, **kwargs)

        monkeypatch.setattr(range_estimation, "dp_percentile_range", spy)
        outputs = np.tile(np.linspace(10.0, 90.0, 60).reshape(-1, 1), (1, dims))
        strategy = LooseOutputRange([(0.0, 100.0)] * dims)
        strategy.estimate(
            make_context(
                outputs=outputs,
                output_dimension=dims,
                blocks_per_record=blocks_per_record,
            ),
            epsilon=epsilon,
            rng=0,
        )
        return captured

    def test_mechanism_epsilon_divided_by_gamma(self, monkeypatch):
        # Fails pre-fix: the mechanism used to receive the full 0.6.
        [eps] = self._mechanism_epsilons(monkeypatch, blocks_per_record=3, epsilon=0.6)
        assert eps == pytest.approx(0.6 / 3)

    def test_gamma_one_unchanged(self, monkeypatch):
        [eps] = self._mechanism_epsilons(monkeypatch, blocks_per_record=1, epsilon=0.6)
        assert eps == pytest.approx(0.6)

    def test_gamma_composes_with_dimension_split(self, monkeypatch):
        epsilons = self._mechanism_epsilons(
            monkeypatch, blocks_per_record=2, epsilon=1.2, dims=2
        )
        assert epsilons == [pytest.approx(1.2 / (2 * 2))] * 2

    def test_charged_epsilon_still_the_full_budget(self, monkeypatch):
        # The *ledger* charge is unchanged — the fix tightens what the
        # mechanism actually provides for that charge.
        outputs = np.linspace(10.0, 90.0, 60).reshape(-1, 1)
        strategy = LooseOutputRange((0.0, 100.0))
        estimate = strategy.estimate(
            make_context(outputs=outputs, blocks_per_record=4),
            epsilon=0.8,
            rng=0,
        )
        assert estimate.epsilon_spent == 0.8


class TestHelperRange:
    def test_budget_fraction_is_half(self):
        assert HelperRange(lambda r: r).budget_fraction == 0.5

    def test_translates_private_input_quartiles(self):
        rng = np.random.default_rng(4)
        values = rng.normal(50, 5, size=(2000, 1))

        def translate(input_ranges):
            (lo, hi), = input_ranges
            return [(lo - 1.0, hi + 1.0)]

        strategy = HelperRange(translate)
        context = make_context(values=values, input_ranges=[(0.0, 100.0)])
        estimate = strategy.estimate(context, epsilon=100.0, rng=rng)
        assert estimate.ranges[0].lo == pytest.approx(np.percentile(values, 25) - 1, abs=2)
        assert estimate.ranges[0].hi == pytest.approx(np.percentile(values, 75) + 1, abs=2)

    def test_missing_input_ranges_rejected(self):
        strategy = HelperRange(lambda r: r)
        context = make_context(input_ranges=[None])
        with pytest.raises(InvalidRange):
            strategy.estimate(context, epsilon=1.0)

    def test_explicit_loose_input_ranges_override(self):
        rng = np.random.default_rng(5)
        values = rng.normal(50, 5, size=(500, 1))
        strategy = HelperRange(lambda r: r, loose_input_ranges=[(0.0, 100.0)])
        context = make_context(values=values, input_ranges=[None])
        estimate = strategy.estimate(context, epsilon=50.0, rng=rng)
        assert 0.0 <= estimate.ranges[0].lo <= 100.0

    def test_override_dimension_mismatch_rejected(self):
        strategy = HelperRange(lambda r: r, loose_input_ranges=[(0.0, 1.0)] * 2)
        with pytest.raises(InvalidRange):
            strategy.estimate(make_context(), epsilon=1.0)

    def test_translation_output_mismatch_rejected(self):
        strategy = HelperRange(lambda r: [(0.0, 1.0)] * 3)
        context = make_context(input_ranges=[(0.0, 100.0)], output_dimension=2)
        with pytest.raises(InvalidRange):
            strategy.estimate(context, epsilon=1.0)

    def test_multi_input_dimensions_each_estimated(self):
        rng = np.random.default_rng(6)
        values = np.column_stack([
            rng.normal(10, 1, 2000), rng.normal(100, 1, 2000),
        ])

        def translate(input_ranges):
            # Output = sum of inputs, so ranges add.
            lo = sum(r[0] for r in input_ranges)
            hi = sum(r[1] for r in input_ranges)
            return [(lo, hi)]

        strategy = HelperRange(translate)
        context = make_context(
            values=values, input_ranges=[(0.0, 20.0), (0.0, 200.0)]
        )
        estimate = strategy.estimate(context, epsilon=200.0, rng=rng)
        assert estimate.ranges[0].midpoint == pytest.approx(110.0, abs=5.0)
