"""Unit tests for automatic budget distribution (§5.2)."""

import numpy as np
import pytest

from repro.core.budget_distribution import BudgetDistributor, QuerySpec
from repro.exceptions import GuptError, InvalidPrivacyParameter


def spec(name="q", width=1.0, blocks=10, gamma=1):
    return QuerySpec(
        name=name, output_width=width, num_blocks=blocks, resampling_factor=gamma
    )


class TestQuerySpec:
    def test_noise_coefficient_formula(self):
        q = spec(width=10.0, blocks=5, gamma=2)
        assert q.noise_coefficient == pytest.approx(np.sqrt(2) * 2 * 10.0 / 5)

    def test_invalid_width_rejected(self):
        with pytest.raises(GuptError):
            spec(width=-1.0)

    def test_invalid_blocks_rejected(self):
        with pytest.raises(GuptError):
            spec(blocks=0)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(GuptError):
            spec(gamma=0)


class TestAllocate:
    def test_shares_sum_to_total(self):
        distributor = BudgetDistributor(2.0)
        allocations = distributor.allocate([spec("a", 1.0), spec("b", 100.0)])
        assert sum(a.epsilon for a in allocations) == pytest.approx(2.0)

    def test_noise_std_equalized(self):
        # The whole point of the zeta-proportional split (Example 4).
        distributor = BudgetDistributor(1.0)
        allocations = distributor.allocate(
            [spec("mean", width=150.0), spec("variance", width=150.0**2 / 4)]
        )
        stds = [a.noise_std for a in allocations]
        assert stds[0] == pytest.approx(stds[1])

    def test_more_sensitive_query_gets_more_budget(self):
        distributor = BudgetDistributor(1.0)
        mean_alloc, var_alloc = distributor.allocate(
            [spec("mean", width=1.0), spec("variance", width=100.0)]
        )
        assert var_alloc.epsilon > mean_alloc.epsilon
        assert var_alloc.epsilon / mean_alloc.epsilon == pytest.approx(100.0)

    def test_identical_queries_split_evenly(self):
        distributor = BudgetDistributor(3.0)
        allocations = distributor.allocate([spec("a"), spec("b"), spec("c")])
        assert all(a.epsilon == pytest.approx(1.0) for a in allocations)

    def test_block_count_enters_the_weighting(self):
        distributor = BudgetDistributor(1.0)
        few, many = distributor.allocate(
            [spec("few", blocks=10), spec("many", blocks=1000)]
        )
        # More blocks -> lower sensitivity -> needs less budget.
        assert few.epsilon > many.epsilon

    def test_even_split_baseline_unequal_noise(self):
        distributor = BudgetDistributor(1.0)
        allocations = distributor.allocate_evenly(
            [spec("mean", width=1.0), spec("variance", width=100.0)]
        )
        assert allocations[0].epsilon == allocations[1].epsilon
        assert allocations[1].noise_std == pytest.approx(
            100.0 * allocations[0].noise_std
        )

    def test_gupt_split_beats_even_split_on_worst_noise(self):
        specs = [spec("mean", width=1.0), spec("variance", width=100.0)]
        distributor = BudgetDistributor(1.0)
        even_worst = max(a.noise_std for a in distributor.allocate_evenly(specs))
        gupt_worst = max(a.noise_std for a in distributor.allocate(specs))
        assert gupt_worst < even_worst

    def test_empty_queries_rejected(self):
        with pytest.raises(GuptError):
            BudgetDistributor(1.0).allocate([])
        with pytest.raises(GuptError):
            BudgetDistributor(1.0).allocate_evenly([])

    @pytest.mark.parametrize("total", [0.0, -1.0, float("nan")])
    def test_invalid_total_rejected(self, total):
        with pytest.raises(InvalidPrivacyParameter):
            BudgetDistributor(total)
