"""Integration-grade tests for the GuptRuntime facade."""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.budget_estimation import AccuracyGoal
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import HelperRange, LooseOutputRange, TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import (
    GuptError,
    InvalidPrivacyParameter,
    PrivacyBudgetExhausted,
)


@pytest.fixture
def manager(rng):
    manager = DatasetManager()
    ages = rng.normal(40, 10, size=5000).clip(0, 150)
    manager.register(
        "census",
        DataTable(ages, column_names=["age"], input_ranges=[(0.0, 150.0)]),
        total_budget=50.0,
        aged_fraction=0.2,
        rng=0,
    )
    return manager


@pytest.fixture
def runtime(manager):
    return GuptRuntime(manager, rng=7)


class TestBasicRun:
    def test_tight_range_query(self, runtime, manager):
        result = runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=5.0)
        live_mean = manager.get("census").table.values.mean()
        assert result.scalar() == pytest.approx(live_mean, abs=3.0)

    def test_budget_charged_exactly(self, runtime, manager):
        runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=2.0)
        assert manager.get("census").budget.spent == pytest.approx(2.0)

    def test_ledger_records_query_name(self, runtime, manager):
        runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
            query_name="avg-age",
        )
        assert manager.get("census").ledger.by_query() == {"avg-age": 1.0}

    def test_unknown_dataset_rejected(self, runtime):
        with pytest.raises(GuptError):
            runtime.run("missing", Mean(), TightRange((0.0, 1.0)), epsilon=1.0)

    def test_budget_exhaustion_blocks_query(self, rng):
        manager = DatasetManager()
        manager.register("tiny", DataTable(rng.uniform(size=100)), total_budget=1.0)
        runtime = GuptRuntime(manager, rng=0)
        runtime.run("tiny", Mean(), TightRange((0.0, 1.0)), epsilon=1.0)
        with pytest.raises(PrivacyBudgetExhausted):
            runtime.run("tiny", Mean(), TightRange((0.0, 1.0)), epsilon=0.5)

    def test_epsilon_and_accuracy_mutually_exclusive(self, runtime):
        with pytest.raises(GuptError):
            runtime.run("census", Mean(), TightRange((0.0, 150.0)))
        with pytest.raises(GuptError):
            runtime.run(
                "census", Mean(), TightRange((0.0, 150.0)),
                epsilon=1.0, accuracy=AccuracyGoal(rho=0.9, delta=0.1),
            )

    @pytest.mark.parametrize("epsilon", [0.0, -1.0, float("inf")])
    def test_invalid_epsilon_rejected(self, runtime, epsilon):
        with pytest.raises(InvalidPrivacyParameter):
            runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=epsilon)


class TestBudgetSplits:
    def test_tight_spends_everything_on_noise(self, runtime):
        result = runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=2.0)
        assert result.epsilon_noise == pytest.approx(2.0)
        assert result.epsilon_range == 0.0

    def test_loose_splits_theorem1(self, runtime):
        result = runtime.run(
            "census", Mean(), LooseOutputRange((0.0, 150.0)), epsilon=2.0
        )
        assert result.epsilon_noise == pytest.approx(1.0)
        assert result.epsilon_range == pytest.approx(1.0)
        assert result.epsilon_total == pytest.approx(2.0)

    def test_helper_splits_theorem1(self, runtime):
        result = runtime.run(
            "census", Mean(), HelperRange(lambda r: [r[0]]), epsilon=2.0
        )
        assert result.epsilon_noise == pytest.approx(1.0)
        assert result.epsilon_range == pytest.approx(1.0)

    def test_loose_range_lies_within_declared(self, runtime):
        result = runtime.run(
            "census", Mean(), LooseOutputRange((0.0, 150.0)), epsilon=10.0
        )
        assert 0.0 <= result.output_ranges[0].lo <= result.output_ranges[0].hi <= 150.0

    def test_loose_estimate_is_accurate_at_high_epsilon(self, runtime, manager):
        result = runtime.run(
            "census", Mean(), LooseOutputRange((0.0, 150.0)), epsilon=40.0
        )
        live_mean = manager.get("census").table.values.mean()
        assert result.scalar() == pytest.approx(live_mean, abs=3.0)

    def test_helper_uses_dataset_input_ranges(self, runtime, manager):
        result = runtime.run(
            "census", Mean(), HelperRange(lambda r: [r[0]]), epsilon=20.0
        )
        live_mean = manager.get("census").table.values.mean()
        # Quartile range of ages surrounds the mean.
        assert result.output_ranges[0].lo < live_mean < result.output_ranges[0].hi


class TestBlockSizeModes:
    def test_explicit_block_size(self, runtime):
        result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0, block_size=40
        )
        assert result.block_size == 40
        assert result.num_blocks == 4000 // 40

    def test_default_is_n_to_the_0_6(self, runtime):
        result = runtime.run("census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0)
        assert result.block_size == round(4000**0.6)

    def test_auto_uses_aged_data(self, runtime):
        result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
            block_size="auto",
        )
        # Mean has no estimation error: the optimizer must pick tiny blocks.
        assert result.block_size <= 5

    def test_auto_without_aged_data_rejected(self, rng):
        manager = DatasetManager()
        manager.register("plain", DataTable(rng.uniform(size=200)), total_budget=10.0)
        runtime = GuptRuntime(manager, rng=0)
        with pytest.raises(GuptError):
            runtime.run(
                "plain", Mean(), TightRange((0.0, 1.0)), epsilon=1.0,
                block_size="auto",
            )

    def test_auto_with_helper_rejected(self, runtime):
        with pytest.raises(GuptError):
            runtime.run(
                "census", Mean(), HelperRange(lambda r: [r[0]]), epsilon=1.0,
                block_size="auto",
            )

    def test_unknown_mode_rejected(self, runtime):
        with pytest.raises(GuptError):
            runtime.run(
                "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
                block_size="magic",
            )

    def test_oversized_block_rejected(self, runtime):
        with pytest.raises(GuptError):
            runtime.run(
                "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
                block_size=10**6,
            )


class TestAccuracyGoals:
    def test_accuracy_goal_derives_epsilon(self, runtime):
        result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)),
            accuracy=AccuracyGoal(rho=0.9, delta=0.1), block_size=50,
        )
        assert result.epsilon_was_estimated
        assert result.epsilon_total > 0

    def test_stricter_goal_costs_more(self, manager):
        def derived(rho):
            runtime = GuptRuntime(manager, rng=0)
            return runtime.run(
                "census", Mean(), TightRange((0.0, 150.0)),
                accuracy=AccuracyGoal(rho=rho, delta=0.1), block_size=50,
            ).epsilon_total

        assert derived(0.95) > derived(0.8)

    def test_accuracy_goal_without_aged_rejected(self, rng):
        manager = DatasetManager()
        manager.register("plain", DataTable(rng.uniform(size=200)), total_budget=10.0)
        runtime = GuptRuntime(manager, rng=0)
        with pytest.raises(GuptError):
            runtime.run(
                "plain", Mean(), TightRange((0.0, 1.0)),
                accuracy=AccuracyGoal(rho=0.9, delta=0.1),
            )

    def test_accuracy_goal_grossed_up_for_loose(self, manager):
        tight_runtime = GuptRuntime(manager, rng=0)
        tight = tight_runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)),
            accuracy=AccuracyGoal(rho=0.9, delta=0.1), block_size=50,
        )
        loose_runtime = GuptRuntime(manager, rng=0)
        loose = loose_runtime.run(
            "census", Mean(), LooseOutputRange((0.0, 150.0)),
            accuracy=AccuracyGoal(rho=0.9, delta=0.1), block_size=50,
        )
        # Loose must charge double: half its budget goes to the range.
        assert loose.epsilon_total == pytest.approx(2 * tight.epsilon_total, rel=0.01)
        assert loose.epsilon_noise == pytest.approx(tight.epsilon_noise, rel=0.01)


class TestOutputDimension:
    def test_inferred_from_program_attribute(self, runtime):
        result = runtime.run(
            "census",
            Mean(),  # has output_dimension = 1
            TightRange((0.0, 150.0)),
            epsilon=1.0,
        )
        assert result.value.shape == (1,)

    def test_explicit_override(self, runtime):
        result = runtime.run(
            "census",
            lambda block: [block.mean(), block.std()],
            TightRange([(0.0, 150.0), (0.0, 75.0)]),
            epsilon=2.0,
            output_dimension=2,
        )
        assert result.value.shape == (2,)

    def test_plain_callable_defaults_to_one(self, runtime):
        result = runtime.run(
            "census", lambda block: float(block.mean()),
            TightRange((0.0, 150.0)), epsilon=1.0,
        )
        assert result.value.shape == (1,)

    def test_invalid_dimension_rejected(self, runtime):
        with pytest.raises(GuptError):
            runtime.run(
                "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
                output_dimension=0,
            )


class TestResampling:
    def test_gamma_recorded(self, runtime):
        result = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
            block_size=100, resampling_factor=3,
        )
        assert result.resampling_factor == 3
        assert result.num_blocks == 3 * (4000 // 100)

    def test_gamma_does_not_change_noise_scale(self, runtime):
        plain = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0, block_size=100
        )
        resampled = runtime.run(
            "census", Mean(), TightRange((0.0, 150.0)), epsilon=1.0,
            block_size=100, resampling_factor=4,
        )
        assert resampled.noise_scales[0] == pytest.approx(plain.noise_scales[0])
