"""Unit tests for the k-means estimator."""

import numpy as np
import pytest

from repro.estimators.kmeans import KMeans, intra_cluster_variance, sort_centers


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    assignment = rng.integers(0, 3, size=600)
    return centers[assignment] + rng.normal(0, 0.4, size=(600, 2)), centers


class TestSortCenters:
    def test_sorts_by_first_coordinate(self):
        flat = np.array([5.0, 1.0, 0.0, 2.0, 3.0, 9.0])
        out = sort_centers(flat, num_clusters=3, num_features=2)
        assert out.tolist() == [0.0, 2.0, 3.0, 9.0, 5.0, 1.0]

    def test_stable_for_sorted_input(self):
        flat = np.array([0.0, 1.0, 5.0, 2.0])
        assert np.array_equal(sort_centers(flat, 2, 2), flat)


class TestIntraClusterVariance:
    def test_zero_for_exact_centers(self):
        data = np.array([[0.0, 0.0], [2.0, 2.0]])
        assert intra_cluster_variance(data, data) == 0.0

    def test_nearest_center_assignment(self):
        data = np.array([[0.0], [10.0]])
        centers = np.array([[0.0], [10.0]])
        assert intra_cluster_variance(data, centers) == 0.0

    def test_single_center(self):
        data = np.array([[0.0], [2.0]])
        assert intra_cluster_variance(data, np.array([1.0])) == pytest.approx(1.0)


class TestKMeans:
    def test_recovers_blob_centers(self, blobs):
        data, truth = blobs
        program = KMeans(num_clusters=3, num_features=2, iterations=20)
        centers = program.fit(data)
        recovered = centers[np.argsort(centers[:, 0] + centers[:, 1])]
        expected = truth[np.argsort(truth[:, 0] + truth[:, 1])]
        assert np.allclose(recovered, expected, atol=0.5)

    def test_callable_output_is_sorted_flat_vector(self, blobs):
        data, _ = blobs
        program = KMeans(num_clusters=3, num_features=2)
        out = program(data)
        assert out.shape == (6,)
        firsts = out.reshape(3, 2)[:, 0]
        assert np.all(np.diff(firsts) >= 0)

    def test_output_dimension(self):
        assert KMeans(num_clusters=4, num_features=10).output_dimension == 40

    def test_deterministic_given_seed(self, blobs):
        data, _ = blobs
        a = KMeans(num_clusters=3, num_features=2, seed=1)(data)
        b = KMeans(num_clusters=3, num_features=2, seed=1)(data)
        assert np.array_equal(a, b)

    def test_early_stopping_limits_work(self, blobs):
        data, _ = blobs
        capped = KMeans(num_clusters=3, num_features=2, iterations=200, tol=1e-6)
        uncapped = KMeans(num_clusters=3, num_features=2, iterations=200, tol=0.0)
        # Same final centers whether or not we early-stop.
        assert np.allclose(capped(data), uncapped(data), atol=1e-4)

    def test_restarts_never_hurt_icv(self, blobs):
        data, _ = blobs
        single = KMeans(num_clusters=3, num_features=2, restarts=1, seed=3)
        multi = KMeans(num_clusters=3, num_features=2, restarts=8, seed=3)
        icv_single = intra_cluster_variance(data, single.fit(data))
        icv_multi = intra_cluster_variance(data, multi.fit(data))
        assert icv_multi <= icv_single + 1e-9

    def test_block_smaller_than_k_still_outputs_k_centers(self):
        program = KMeans(num_clusters=4, num_features=1)
        out = program(np.array([[1.0], [2.0]]))
        assert out.shape == (4,)

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=2, num_features=3).fit(np.zeros((10, 2)))

    @pytest.mark.parametrize("kwargs", [
        {"num_clusters": 0, "num_features": 1},
        {"num_clusters": 1, "num_features": 0},
        {"num_clusters": 1, "num_features": 1, "iterations": 0},
        {"num_clusters": 1, "num_features": 1, "restarts": 0},
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            KMeans(**kwargs)
