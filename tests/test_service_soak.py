"""Soak test: sustained mixed owner/analyst traffic against the service.

Runs the full hosted stack — scheduler, transactional accounting,
chambers — under continuous concurrent load for a wall-clock duration
taken from ``REPRO_SOAK_SECONDS`` (default 2 so the tier-1 run stays
fast; the CI concurrency job sets 30).  Traffic mix:

* an *owner* thread that keeps registering fresh datasets and auditing
  ledgers of the existing ones;
* several *analyst* threads submitting seeded and unseeded queries
  through the scheduler against a rotating set of datasets, some of
  which run dry mid-soak;
* a *saboteur* analyst whose programs die on every block (exercising
  reservation rollback) and who cancels some of its own queries.

At the end, the accounting invariants must hold exactly: per-dataset
``spent <= total`` and ``spent == fsum(ledger)`` bit-for-bit, every
submitted handle resolved to exactly one terminal response, and the
drained scheduler reads zero queued and zero running.

The soak runs twice: once in-memory and once with a ``state_dir``, so
the whole battery also exercises the journaled accounting path — every
reserve/commit/rollback under load goes through an fsync'd append — and
the journal replay afterwards must agree with the live books exactly.
"""

from __future__ import annotations

import math
import os
import threading
import time

import numpy as np
import pytest

from repro.accounting.journal import journal_path, recover
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.observability import MetricsRegistry
from repro.runtime.service import (
    ANALYST,
    OWNER,
    GuptService,
    QueryRequest,
)

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "2"))
ANALYST_THREADS = 4
EPSILON = 0.125  # binary-exact; budgets are small multiples of it


def mean_program(block):
    return float(np.mean(block))


def doomed_program(block):
    raise RuntimeError("dies on every block")


@pytest.mark.parametrize("durable", [False, True], ids=["in-memory", "journaled"])
def test_soak_mixed_traffic_preserves_invariants(durable, tmp_path):
    registry = MetricsRegistry()
    state_dir = str(tmp_path) if durable else None
    service = GuptService(
        metrics=registry,
        rng=90210,
        scheduler_workers=4,
        max_inflight=16,
        queue_depth=64,
        query_timeout=30.0,
        state_dir=state_dir,
    )
    owner = service.enroll(OWNER, "owner")
    analysts = [service.enroll(ANALYST, f"analyst-{i}") for i in range(ANALYST_THREADS)]
    saboteur = service.enroll(ANALYST, "saboteur")

    table_rng = np.random.default_rng(1)

    def fresh_table() -> DataTable:
        return DataTable(
            table_rng.uniform(0.0, 10.0, size=(64, 1)), column_names=("x",)
        )

    datasets: list[str] = []
    totals: dict[str, float] = {}
    datasets_lock = threading.Lock()

    def register(index: int) -> None:
        name = f"soak-{index}"
        # Tight budgets (a handful of EPSILON slices) so datasets run
        # dry mid-soak and refusals flow constantly.
        total = EPSILON * int(table_rng.integers(4, 40))
        service.register_dataset(owner.token, name, fresh_table(), total_budget=total)
        with datasets_lock:
            totals[name] = total
            datasets.append(name)

    register(0)
    register(1)

    deadline = time.monotonic() + SOAK_SECONDS
    errors: list[BaseException] = []
    unresolved: list[str] = []

    def owner_loop() -> None:
        index = 2
        try:
            while time.monotonic() < deadline:
                register(index)
                index += 1
                # Audit while traffic is live: the ledger must always be
                # internally consistent with the budget.
                with datasets_lock:
                    name = datasets[int(table_rng.integers(0, len(datasets)))]
                entries = service.ledger_entries(owner.token, name)
                description = service.describe_dataset(owner.token, name)
                audited = math.fsum(epsilon for _, epsilon in entries)
                # Mid-flight the ledger may trail an in-progress commit,
                # but it can never exceed the registered total, and the
                # advertised remaining budget can never go negative.
                if audited > totals[name]:
                    raise AssertionError(f"{name} ledger exceeds its budget")
                if description.remaining_budget < 0.0:
                    raise AssertionError(f"{name} advertises negative budget")
                time.sleep(0.05)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def analyst_loop(slot: int, principal) -> None:
        local = np.random.default_rng(5000 + slot)
        try:
            step = 0
            while time.monotonic() < deadline:
                with datasets_lock:
                    name = datasets[int(local.integers(0, len(datasets)))]
                seed = int(local.integers(0, 2**31)) if step % 2 else None
                handle = service.submit(principal.token, QueryRequest(
                    dataset=name,
                    program=mean_program,
                    range_strategy=TightRange(((0.0, 10.0),)),
                    epsilon=EPSILON,
                    block_size=8,
                    query_name=f"{principal.name}-{step}",
                    seed=seed,
                ))
                response = service.result(handle, timeout=30.0)
                if response is None:
                    unresolved.append(f"{principal.name}-{step}")
                elif response.ok and response.epsilon_charged != EPSILON:
                    raise AssertionError(
                        f"wrong charge: {response.epsilon_charged}"
                    )
                step += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def saboteur_loop() -> None:
        local = np.random.default_rng(666)
        try:
            step = 0
            while time.monotonic() < deadline:
                with datasets_lock:
                    name = datasets[int(local.integers(0, len(datasets)))]
                handle = service.submit(saboteur.token, QueryRequest(
                    dataset=name,
                    program=doomed_program,
                    range_strategy=TightRange(((0.0, 10.0),)),
                    epsilon=EPSILON,
                    block_size=8,
                    query_name=f"sabotage-{step}",
                ))
                if step % 3 == 0:
                    service.cancel(handle)  # races dispatch; either is fine
                response = service.result(handle, timeout=30.0)
                if response is None:
                    unresolved.append(f"sabotage-{step}")
                elif response.ok:
                    raise AssertionError("a doomed program cannot succeed")
                step += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=owner_loop, name="owner")]
    threads += [
        threading.Thread(target=analyst_loop, args=(i, p), name=p.name)
        for i, p in enumerate(analysts)
    ]
    threads.append(threading.Thread(target=saboteur_loop, name="saboteur"))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    assert not unresolved, unresolved

    # Post-drain accounting: every dataset's books balance bit-exactly.
    live_spent: dict[str, float] = {}
    for name in datasets:
        description = service.describe_dataset(owner.token, name)
        entries = service.ledger_entries(owner.token, name)
        audited = math.fsum(epsilon for _, epsilon in entries)
        registered = service._datasets.get(name)
        assert registered.budget.spent <= registered.budget.total
        assert registered.budget.spent == audited  # ledger == budget, exact
        assert registered.budget.reserved == 0.0  # no hold survived its query
        assert description.remaining_budget >= 0.0
        live_spent[name] = registered.budget.spent

    service.close()

    if durable:
        # The journal, replayed cold, reconstructs every dataset's spend
        # bit-for-bit: the soak settled cleanly, so recovery needs no
        # conservative resolutions and loses nothing.
        replayed = recover(journal_path(state_dir))
        assert sorted(replayed.datasets) == sorted(datasets)
        for name, state in replayed.datasets.items():
            assert state.spent == live_spent[name]
            assert state.conservative == 0
            assert not state.pending
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["scheduler.queue_depth"] == 0.0
    assert snapshot["gauges"]["scheduler.running"] == 0.0
    counters = snapshot["counters"]
    submitted = counters["scheduler.submitted"]
    settled = sum(
        value for key, value in counters.items()
        if key.startswith("scheduler.completed")
    )
    # Exactly one terminal outcome per submission, whatever its path
    # (ok, error, rejection, timeout, cancellation, shutdown).
    assert settled == submitted
    assert submitted > 0
