"""Unit tests for composition accounting."""

import pytest

from repro.exceptions import InvalidPrivacyParameter
from repro.mechanisms.composition import (
    parallel_composition,
    sequential_composition,
    split_evenly,
    split_proportionally,
)


class TestSequential:
    def test_sum(self):
        assert sequential_composition([0.5, 0.25, 0.25]) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert sequential_composition([]) == 0.0

    def test_zero_entries_allowed(self):
        assert sequential_composition([0.0, 1.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            sequential_composition([1.0, -0.1])

    def test_nan_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            sequential_composition([float("nan")])


class TestParallel:
    def test_max(self):
        assert parallel_composition([0.5, 2.0, 1.0]) == 2.0

    def test_empty_is_zero(self):
        assert parallel_composition([]) == 0.0

    def test_cheaper_than_sequential(self):
        eps = [0.5, 0.5, 0.5]
        assert parallel_composition(eps) < sequential_composition(eps)


class TestSplitEvenly:
    def test_shares_sum_to_total(self):
        shares = split_evenly(1.0, 7)
        assert sum(shares) == pytest.approx(1.0)
        assert len(shares) == 7

    def test_single_part(self):
        assert split_evenly(2.0, 1) == [2.0]

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            split_evenly(1.0, 0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            split_evenly(0.0, 2)


class TestSplitProportionally:
    def test_proportions(self):
        shares = split_proportionally(1.0, [1.0, 3.0])
        assert shares[0] == pytest.approx(0.25)
        assert shares[1] == pytest.approx(0.75)

    def test_shares_sum_to_total(self):
        shares = split_proportionally(2.5, [0.1, 0.2, 0.7])
        assert sum(shares) == pytest.approx(2.5)

    def test_all_zero_weights_fall_back_to_even(self):
        shares = split_proportionally(1.0, [0.0, 0.0])
        assert shares == [0.5, 0.5]

    def test_zero_weight_gets_zero_share(self):
        shares = split_proportionally(1.0, [0.0, 1.0])
        assert shares[0] == 0.0

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            split_proportionally(1.0, [])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            split_proportionally(1.0, [1.0, -1.0])

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            split_proportionally(-1.0, [1.0])
