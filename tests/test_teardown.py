"""Teardown ordering: every close is idempotent and exactly-once.

Teardown paths overlap in this codebase by design — context managers,
explicit ``close()`` calls, ``GuptService.close`` cascading into
``GuptRuntime.close`` cascading into the backends, ``__del__`` as a
last resort.  A double release of worker processes or shared-memory
segments is a crash; a *skipped* release is a leak.  These regression
tests pin the contract at every layer: closing twice is a no-op, the
expensive teardown happens exactly once, and — for the pool backend,
which is restartable by design — closing does not wedge the owner
against a later run.
"""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import ComputationError
from repro.observability import MetricsRegistry
from repro.runtime.computation_manager import ComputationManager
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.service import ANALYST, OWNER, GuptService, QueryRequest
from repro.runtime.shard import ShardedExecutionBackend


def _table(num_records: int = 400) -> DataTable:
    values = np.random.default_rng(3).uniform(0.0, 100.0, size=num_records)
    return DataTable(values, column_names=["v"], input_ranges=[(0.0, 100.0)])


class TestShardedBackendTeardown:
    def test_close_is_idempotent_and_terminal(self):
        backend = ShardedExecutionBackend(shards=2, workers=2)
        backend._ensure_started()
        processes = [w.process for w in backend._workers]
        backend.close()
        assert all(not p.is_alive() for p in processes)
        backend.close()  # second call: cheap no-op, no double release
        with pytest.raises(ComputationError, match="closed"):
            backend._ensure_started()

    def test_close_releases_segments_exactly_once(self, monkeypatch):
        from repro.runtime.shard import _DatasetSegment

        backend = ShardedExecutionBackend(shards=2, workers=1)
        with backend._dispatch_lock:
            backend._ensure_started()
            backend._ensure_dataset_locked(
                ("d", 1), np.arange(20.0).reshape(-1, 1)
            )
        releases = []
        original = _DatasetSegment.release
        monkeypatch.setattr(
            _DatasetSegment, "release",
            lambda segment: (releases.append(segment.key), original(segment))[1],
        )
        backend.close()
        backend.close()
        assert releases == [("d", 1)]

    def test_context_manager_overlapping_explicit_close(self):
        with ShardedExecutionBackend(shards=2, workers=1) as backend:
            backend._ensure_started()
            backend.close()  # __exit__ will close again — must not raise


class TestComputationManagerTeardown:
    def test_sharded_manager_double_close(self):
        manager = ComputationManager(backend="sharded", shards=2, max_workers=2)
        backend = manager.sharded_backend
        backend._ensure_started()
        manager.close()
        manager.close()
        assert backend._closed

    def test_pool_backend_survives_close_run_close(self):
        """The pool restarts transparently after close; the manager must
        not remember a close and skip the next one (that would leak the
        restarted workers)."""
        manager = ComputationManager(backend="pool", max_workers=1)

        def run_once():
            values = np.random.default_rng(0).uniform(0, 10, size=(40, 1))
            blocks = [values[i * 10 : (i + 1) * 10] for i in range(4)]
            results = manager.run_blocks(Mean(), blocks, 1, np.zeros(1))
            assert all(r.succeeded for r in results)

        run_once()
        manager.close()
        run_once()  # transparently restarts the pool
        pool = manager._pool
        assert pool._workers, "pool did not restart"
        manager.close()  # second close must still stop the new workers
        assert not pool._workers


class TestRuntimeTeardown:
    def test_double_close_unhooks_exactly_once(self):
        manager = DatasetManager()
        manager.register("d", _table(), total_budget=10.0)
        runtime = GuptRuntime(manager, rng=0, backend="sharded", shards=2)
        runtime.run(
            "d", Mean(), TightRange((0.0, 100.0)), epsilon=0.5,
            block_size=50, rng=1,
        )
        hooks_before = len(manager._invalidation_hooks)
        runtime.close()
        assert len(manager._invalidation_hooks) == hooks_before - 2
        runtime.close()  # idempotent: no double unhook, no error
        assert len(manager._invalidation_hooks) == hooks_before - 2

    def test_close_without_any_query(self):
        manager = DatasetManager()
        manager.register("d", _table(), total_budget=10.0)
        runtime = GuptRuntime(manager, rng=0, backend="sharded", shards=2)
        runtime.close()
        runtime.close()


class TestServiceTeardown:
    def _service(self) -> GuptService:
        service = GuptService(rng=0, backend="sharded", shards=2, workers=2)
        owner = service.enroll(OWNER, "o")
        service.register_dataset(owner.token, "d", _table(), total_budget=10.0)
        return service

    def test_double_close_drains_scheduler_once(self, monkeypatch):
        service = self._service()
        analyst = service.enroll(ANALYST, "a")
        response = service.execute(
            analyst.token,
            QueryRequest(
                dataset="d", program=Mean(),
                range_strategy=TightRange((0.0, 100.0)), epsilon=0.5, seed=1,
            ),
        )
        assert response.ok
        scheduler = service.scheduler
        closes = []
        original = scheduler.close
        monkeypatch.setattr(
            scheduler, "close",
            lambda drain=True: (closes.append(drain), original(drain=drain))[1],
        )
        service.close()
        service.close()
        assert closes == [True]

    def test_close_before_scheduler_exists(self):
        service = GuptService(rng=0)
        service.close()
        service.close()

    def test_context_exit_after_explicit_close(self):
        with self._service() as service:
            service.close()


class TestSchedulerTeardown:
    def test_double_close(self):
        scheduler = QueryScheduler(workers=2)
        scheduler.close()
        scheduler.close()
        assert scheduler._close_finished
