"""Unit tests for the clamp-average-perturb aggregator."""

import numpy as np
import pytest

from repro.core.aggregation import (
    NoisyAverageAggregator,
    OutputRange,
    ranges_from_pairs,
)
from repro.exceptions import InvalidPrivacyParameter, InvalidRange


class TestOutputRange:
    def test_width_and_midpoint(self):
        r = OutputRange(-2.0, 6.0)
        assert r.width == 8.0
        assert r.midpoint == 2.0

    def test_clamp(self):
        r = OutputRange(0.0, 1.0)
        assert np.array_equal(r.clamp(np.array([-1.0, 0.5, 2.0])), [0.0, 0.5, 1.0])

    def test_degenerate_range_allowed(self):
        r = OutputRange(3.0, 3.0)
        assert r.width == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(InvalidRange):
            OutputRange(1.0, 0.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(InvalidRange):
            OutputRange(0.0, float("inf"))

    def test_clamp_replaces_nan_with_midpoint(self):
        # Regression: np.clip passes NaN through, so a single NaN block
        # output used to poison the released average into NaN.
        r = OutputRange(0.0, 10.0)
        clamped = r.clamp(np.array([np.nan, 2.0, 12.0]))
        assert np.array_equal(clamped, [5.0, 2.0, 10.0])
        assert np.isfinite(clamped).all()

    def test_clamp_replaces_infinities_with_midpoint(self):
        r = OutputRange(-1.0, 1.0)
        clamped = r.clamp(np.array([np.inf, -np.inf, 0.25]))
        assert np.array_equal(clamped, [0.0, 0.0, 0.25])

    def test_clamp_all_finite_fast_path_unchanged(self):
        r = OutputRange(0.0, 1.0)
        assert np.array_equal(r.clamp(np.array([-1.0, 0.5, 2.0])), [0.0, 0.5, 1.0])


class TestRangesFromPairs:
    def test_single_pair(self):
        ranges = ranges_from_pairs((0.0, 1.0))
        assert len(ranges) == 1
        assert ranges[0].hi == 1.0

    def test_list_of_pairs(self):
        ranges = ranges_from_pairs([(0, 1), (2, 3)])
        assert [r.lo for r in ranges] == [0.0, 2.0]

    def test_single_output_range_object(self):
        r = OutputRange(0.0, 1.0)
        assert ranges_from_pairs(r) == [r]

    def test_mixed_list(self):
        ranges = ranges_from_pairs([OutputRange(0, 1), (2, 3)])
        assert len(ranges) == 2

    def test_empty_rejected(self):
        with pytest.raises(InvalidRange):
            ranges_from_pairs([])

    def test_numpy_pair_vector(self):
        # Regression: a length-2 ndarray used to be iterated element by
        # element, treating each scalar bound as its own "pair".
        ranges = ranges_from_pairs(np.array([0.0, 1.0]))
        assert ranges == [OutputRange(0.0, 1.0)]

    def test_numpy_matrix_of_pairs(self):
        ranges = ranges_from_pairs(np.array([[0.0, 1.0], [2.0, 3.0]]))
        assert [(r.lo, r.hi) for r in ranges] == [(0.0, 1.0), (2.0, 3.0)]

    def test_list_of_numpy_pairs(self):
        ranges = ranges_from_pairs([np.array([0.0, 1.0]), (2.0, 3.0)])
        assert [(r.lo, r.hi) for r in ranges] == [(0.0, 1.0), (2.0, 3.0)]

    def test_scalar_raises_invalid_range_not_type_error(self):
        with pytest.raises(InvalidRange):
            ranges_from_pairs(5.0)

    def test_wrong_length_vector_rejected(self):
        with pytest.raises(InvalidRange):
            ranges_from_pairs(np.array([0.0, 1.0, 2.0]))

    def test_malformed_pair_inside_list_rejected(self):
        with pytest.raises(InvalidRange):
            ranges_from_pairs([(0.0, 1.0), "nonsense"])


class TestNoiseScale:
    def test_algorithm1_formula(self):
        # Lap(width / (l * eps)) for disjoint blocks.
        agg = NoisyAverageAggregator((0.0, 10.0), epsilon=2.0)
        assert agg.noise_scale(0, num_blocks=50, blocks_per_record=1) == pytest.approx(
            10.0 / (50 * 2.0)
        )

    def test_resampling_formula(self):
        # gamma multiplies the scale for fixed block count...
        agg = NoisyAverageAggregator((0.0, 10.0), epsilon=2.0)
        assert agg.noise_scale(0, num_blocks=50, blocks_per_record=4) == pytest.approx(
            4 * 10.0 / (50 * 2.0)
        )

    def test_claim1_noise_independent_of_gamma_for_fixed_block_size(self):
        # ...but for a FIXED BLOCK SIZE, gamma also multiplies the block
        # count, so the scale is unchanged (Claim 1 of the paper).
        agg = NoisyAverageAggregator((0.0, 10.0), epsilon=2.0)
        base = agg.noise_scale(0, num_blocks=50, blocks_per_record=1)
        resampled = agg.noise_scale(0, num_blocks=200, blocks_per_record=4)
        assert resampled == pytest.approx(base)

    def test_epsilon_split_across_dimensions(self):
        single = NoisyAverageAggregator((0.0, 1.0), epsilon=1.0)
        double = NoisyAverageAggregator([(0.0, 1.0), (0.0, 1.0)], epsilon=1.0)
        assert double.noise_scale(0, 10, 1) == pytest.approx(
            2 * single.noise_scale(0, 10, 1)
        )

    def test_invalid_args_rejected(self):
        agg = NoisyAverageAggregator((0.0, 1.0), epsilon=1.0)
        with pytest.raises(ValueError):
            agg.noise_scale(0, num_blocks=0, blocks_per_record=1)
        with pytest.raises(ValueError):
            agg.noise_scale(0, num_blocks=1, blocks_per_record=0)


class TestAggregate:
    def test_mean_of_in_range_outputs(self):
        agg = NoisyAverageAggregator((0.0, 100.0), epsilon=1e9)
        release = agg.aggregate(np.array([10.0, 20.0, 30.0]), rng=0)
        assert release.scalar() == pytest.approx(20.0, abs=1e-3)

    def test_clamping_applied_before_average(self):
        agg = NoisyAverageAggregator((0.0, 10.0), epsilon=1e9)
        release = agg.aggregate(np.array([-100.0, 5.0, 100.0]), rng=0)
        assert release.scalar() == pytest.approx((0.0 + 5.0 + 10.0) / 3, abs=1e-3)

    def test_1d_input_promoted(self):
        agg = NoisyAverageAggregator((0.0, 1.0), epsilon=1e9)
        release = agg.aggregate(np.array([0.5, 0.5]), rng=0)
        assert release.value.shape == (1,)

    def test_multidimensional(self):
        agg = NoisyAverageAggregator([(0.0, 1.0), (0.0, 100.0)], epsilon=1e9)
        outputs = np.array([[0.2, 10.0], [0.4, 30.0]])
        release = agg.aggregate(outputs, rng=0)
        assert release.value[0] == pytest.approx(0.3, abs=1e-3)
        assert release.value[1] == pytest.approx(20.0, abs=1e-2)

    def test_dimension_mismatch_rejected(self):
        agg = NoisyAverageAggregator((0.0, 1.0), epsilon=1.0)
        with pytest.raises(ValueError):
            agg.aggregate(np.zeros((5, 2)))

    def test_3d_rejected(self):
        agg = NoisyAverageAggregator((0.0, 1.0), epsilon=1.0)
        with pytest.raises(ValueError):
            agg.aggregate(np.zeros((2, 2, 2)))

    def test_noise_has_expected_magnitude(self):
        agg = NoisyAverageAggregator((0.0, 1.0), epsilon=1.0)
        rng = np.random.default_rng(0)
        outputs = np.full(10, 0.5)
        scale = agg.noise_scale(0, 10, 1)
        draws = [agg.aggregate(outputs, rng=rng).scalar() - 0.5 for _ in range(5000)]
        assert np.std(draws) == pytest.approx(np.sqrt(2) * scale, rel=0.05)

    def test_release_metadata(self):
        agg = NoisyAverageAggregator((0.0, 1.0), epsilon=0.7)
        release = agg.aggregate(np.full(12, 0.5), rng=0)
        assert release.epsilon == 0.7
        assert release.num_blocks == 12
        assert release.noise_scales.shape == (1,)

    def test_scalar_rejects_vector_release(self):
        agg = NoisyAverageAggregator([(0.0, 1.0)] * 2, epsilon=1.0)
        release = agg.aggregate(np.zeros((3, 2)), rng=0)
        with pytest.raises(ValueError):
            release.scalar()

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(InvalidPrivacyParameter):
            NoisyAverageAggregator((0.0, 1.0), epsilon=0.0)
