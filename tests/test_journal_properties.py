"""Property-based invariants for journaled accounting with crashes.

Same hand-rolled harness as ``test_budget_properties.py`` (seeded
:mod:`numpy` random scripts, dyadic-rational epsilons, exact ``==``
assertions — no hypothesis dependency), extended with two new events the
journal exists for:

* *crash* — the writer abandons the journal mid-session (no clean
  shutdown record, live reservations never settled) and a successor
  manager recovers from disk;
* *journal failure* — an injected error on the next append, exercising
  the fail-closed paths (a reserve that cannot be journaled is refused;
  a commit that cannot be journaled stays pending and later resolves
  conservatively).

The shadow model knows exactly what conservative recovery must produce:
every real commit plus every hold that was in flight at a crash.  The
central invariant, asserted after every recovery:

    recovered spent == fsum(commits + crashed holds)   (exact), hence
    recovered remaining <= total - fsum(commits)        (never above truth).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.accounting.journal import journal_path, recover
from repro.accounting.manager import DatasetManager
from repro.datasets.table import DataTable
from repro.exceptions import GuptError, PrivacyBudgetExhausted
from repro.observability import MetricsRegistry
from repro.testing import failpoints

SEEDS = list(range(10))
QUANTUM = 1.0 / 1024.0
TOTAL = 4.0


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


def _epsilon(rng: np.random.Generator) -> float:
    return int(rng.integers(1, 257)) * QUANTUM


def _table() -> DataTable:
    rng = np.random.default_rng(99)
    return DataTable(rng.uniform(0.0, 1.0, size=(32, 1)), column_names=("x",))


class _Shadow:
    """Exact reference for what durable recovery must reconstruct."""

    def __init__(self, total: float):
        self.total = total
        self.commits: list[float] = []       # really-released spends
        self.conservative: list[float] = []  # holds lost to a crash

    @property
    def durable_spent(self) -> float:
        return math.fsum(self.commits + self.conservative)

    @property
    def truth_remaining(self) -> float:
        """Budget the in-flight queries had actually consumed at most."""
        return self.total - math.fsum(self.commits)

    def fits(self, epsilon: float, holds: dict[int, float]) -> bool:
        headroom = (
            self.total - self.durable_spent - math.fsum(holds.values())
        )
        return epsilon <= headroom


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_recover_scripts_match_shadow_model(seed, tmp_path):
    """Random reserve/commit/rollback/charge/crash scripts: after every
    recovery the adopted budget equals the shadow model bit-for-bit and
    never resurrects crash-lost epsilon."""
    rng = np.random.default_rng(seed)
    state_dir = str(tmp_path)
    model = _Shadow(TOTAL)
    holds: dict[int, float] = {}  # model-side live reservations
    live: dict[int, object] = {}  # model id -> BudgetReservation
    next_id = 0

    manager = DatasetManager(metrics=MetricsRegistry(), state_dir=state_dir)
    registered = manager.register("prop", _table(), total_budget=TOTAL)

    def crash_and_recover():
        nonlocal manager, registered
        # A crash settles nothing: every live hold is lost in flight and
        # recovery must treat it as spent.
        model.conservative.extend(holds.values())
        holds.clear()
        live.clear()
        manager.journal.abandon()
        manager = DatasetManager(
            metrics=MetricsRegistry(), state_dir=state_dir
        )
        assert manager.recovered_names() == ["prop"]
        registered = manager.register("prop", _table(), total_budget=TOTAL)
        assert registered.budget.spent == model.durable_spent
        assert registered.budget.remaining <= model.truth_remaining
        assert registered.ledger.total_spent == model.durable_spent

    for _ in range(120):
        op = int(rng.integers(0, 12))
        if op <= 4:  # reserve
            epsilon = _epsilon(rng)
            if model.fits(epsilon, holds):
                live[next_id] = registered.reserve(epsilon, f"q{next_id}")
                holds[next_id] = epsilon
                next_id += 1
            else:
                with pytest.raises(PrivacyBudgetExhausted):
                    registered.reserve(epsilon, "refused")
        elif op <= 7 and live:  # commit a random hold
            key = int(rng.choice(list(live)))
            live.pop(key).commit()
            model.commits.append(holds.pop(key))
        elif op <= 9 and live:  # roll back a random hold
            key = int(rng.choice(list(live)))
            live.pop(key).rollback()
            del holds[key]
        elif op == 10:  # one-shot charge
            epsilon = _epsilon(rng)
            if model.fits(epsilon, holds):
                registered.charge(epsilon, "charge")
                model.commits.append(epsilon)
            else:
                with pytest.raises(PrivacyBudgetExhausted):
                    registered.charge(epsilon, "refused")
        else:  # crash + recover
            crash_and_recover()

        assert registered.budget.spent == model.durable_spent
        assert registered.budget.spent + registered.budget.reserved <= TOTAL

    crash_and_recover()
    manager.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_injected_journal_failures_stay_conservative(seed, tmp_path):
    """Random journal-append failures: reserve fails closed (refused, no
    budget held), commit fails pending (resolved conservatively at the
    next recovery) — recovered spend never drops below real commits."""
    rng = np.random.default_rng(seed)
    state_dir = str(tmp_path)
    model = _Shadow(TOTAL)
    holds: dict[int, float] = {}
    live: dict[int, object] = {}
    stuck: dict[int, float] = {}  # commit journaled? no — commit *failed*
    next_id = 0

    manager = DatasetManager(metrics=MetricsRegistry(), state_dir=state_dir)
    registered = manager.register("prop", _table(), total_budget=TOTAL)

    for _ in range(80):
        op = int(rng.integers(0, 10))
        inject = int(rng.integers(0, 4)) == 0
        if op <= 3:  # reserve, possibly with a failing journal
            epsilon = _epsilon(rng)
            fits = model.fits(epsilon, holds) and epsilon <= (
                TOTAL - model.durable_spent
                - math.fsum(holds.values()) - math.fsum(stuck.values())
            )
            if not fits:
                with pytest.raises(GuptError):
                    registered.reserve(epsilon, "refused")
                continue
            if inject:
                failpoints.arm("journal.append.pre", "error")
                with pytest.raises(GuptError):
                    registered.reserve(epsilon, "doomed")
                failpoints.disarm("journal.append.pre")
                # Fail-closed: the in-memory hold was released too.
            else:
                live[next_id] = registered.reserve(epsilon, f"q{next_id}")
                holds[next_id] = epsilon
                next_id += 1
        elif op <= 6 and live:  # commit, possibly with a failing journal
            key = int(rng.choice(list(live)))
            reservation = live.pop(key)
            if inject:
                failpoints.arm("journal.append.pre", "error")
                with pytest.raises(GuptError):
                    reservation.commit()
                failpoints.disarm("journal.append.pre")
                # The hold survives in memory (still counted against the
                # budget) and its reserve record survives on disk: the
                # next recovery must resolve it as spent.
                stuck[key] = holds.pop(key)
            else:
                reservation.commit()
                model.commits.append(holds.pop(key))
        elif op <= 8 and live:  # rollback
            key = int(rng.choice(list(live)))
            live.pop(key).rollback()
            del holds[key]

    # Crash with everything unsettled still in flight.
    model.conservative.extend(holds.values())
    model.conservative.extend(stuck.values())
    manager.journal.abandon()

    result = recover(journal_path(state_dir))
    state = result.datasets["prop"]
    assert state.spent == model.durable_spent
    assert state.spent >= math.fsum(model.commits)
    assert state.remaining <= model.truth_remaining
    assert not state.pending


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_recovery_is_idempotent(seed, tmp_path):
    """Recovering N times (and idle restart cycles) changes nothing."""
    rng = np.random.default_rng(seed)
    state_dir = str(tmp_path)
    manager = DatasetManager(state_dir=state_dir)
    registered = manager.register("prop", _table(), total_budget=TOTAL)
    for i in range(int(rng.integers(3, 9))):
        registered.charge(_epsilon(rng), f"q{i}")
    if rng.integers(0, 2) == 0:
        registered.reserve(_epsilon(rng), "in-flight")  # dies with us
    manager.journal.abandon()

    first = recover(journal_path(state_dir)).datasets["prop"]
    for _ in range(3):
        again = recover(journal_path(state_dir)).datasets["prop"]
        assert again.spent == first.spent
        assert again.remaining == first.remaining

    spent = first.spent
    for _ in range(3):  # idle restart cycles append only RECOVERY barriers
        with DatasetManager(state_dir=state_dir) as cycled:
            assert cycled.recovered_names() == ["prop"]
            adopted = cycled.register("prop", _table(), total_budget=TOTAL)
            assert adopted.budget.spent == spent


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_concurrent_settled_traffic_replays_exactly(seed, tmp_path):
    """Concurrent journaled traffic that settles cleanly replays to the
    exact fsum of committed epsilons — no interleaving of appends can
    lose, duplicate or fabricate a record."""
    import threading

    rng = np.random.default_rng(seed)
    state_dir = str(tmp_path)
    manager = DatasetManager(metrics=MetricsRegistry(), state_dir=state_dir)
    registered = manager.register("prop", _table(), total_budget=TOTAL)

    threads = 4
    committed: list[list[float]] = [[] for _ in range(threads)]
    thread_seeds = [int(s) for s in rng.integers(0, 2**31, size=threads)]
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def script(slot: int) -> None:
        local = np.random.default_rng(thread_seeds[slot])
        barrier.wait()
        try:
            for step in range(20):
                epsilon = _epsilon(local)
                try:
                    reservation = registered.reserve(
                        epsilon, f"t{slot}-q{step}"
                    )
                except PrivacyBudgetExhausted:
                    continue
                if local.integers(0, 3) == 0:
                    reservation.rollback()
                else:
                    reservation.commit()
                    committed[slot].append(epsilon)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=script, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors

    live_spent = registered.budget.spent
    manager.close()

    state = recover(journal_path(state_dir)).datasets["prop"]
    everything = [e for chunk in committed for e in chunk]
    assert state.spent == math.fsum(everything) == live_spent
    assert state.conservative == 0
    assert not state.pending
