"""Failure injection: hostile and broken analyst programs.

The runtime's contract is that no analyst program — crashing, hanging,
shape-shifting, or adversarially data-dependent — can crash the
platform, corrupt the accounting, or push a release outside the
declared range by more than the Laplace noise.  Property-based fuzzing
(hypothesis) drives the program behaviors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.manager import DatasetManager
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.core.sample_aggregate import SampleAggregateEngine
from repro.datasets.table import DataTable
from repro.exceptions import ComputationError, GuptError


DATA = np.linspace(0.0, 10.0, 200).reshape(-1, 1)


class TestHostilePrograms:
    @given(
        behavior=st.sampled_from(
            ["crash", "nan", "inf", "wrong-shape", "string", "none", "huge"]
        ),
        fail_fraction=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_partial_failures_never_crash_or_escape_range(
        self, behavior, fail_fraction, seed
    ):
        generator = np.random.default_rng(seed)

        def flaky(block):
            if generator.uniform() < fail_fraction:
                if behavior == "crash":
                    raise RuntimeError("injected")
                return {
                    "nan": float("nan"),
                    "inf": float("inf"),
                    "wrong-shape": [1.0, 2.0, 3.0],
                    "string": "not a number",
                    "none": None,
                    "huge": 1e300,
                }[behavior]
            return float(np.mean(block))

        engine = SampleAggregateEngine()
        try:
            release = engine.run(
                DATA, flaky, epsilon=1.0, output_ranges=(0.0, 10.0),
                block_size=20, rng=seed,
            )
        except ComputationError:
            # Acceptable only when literally every block failed.
            return
        # Clamping bounds the data-derived part; noise scale at these
        # parameters is 10/(10*1) = 1, so +-60 sigma is astronomically
        # safe as an outer bound.
        assert -70.0 <= release.scalar() <= 80.0
        assert np.isfinite(release.value).all()

    def test_huge_values_are_clamped_not_propagated(self):
        engine = SampleAggregateEngine()
        release = engine.run(
            DATA, lambda b: 1e300, epsilon=1e9, output_ranges=(0.0, 10.0),
            block_size=20, rng=0,
        )
        assert release.scalar() == pytest.approx(10.0, abs=0.01)

    def test_program_mutating_its_block_cannot_corrupt_the_dataset(self):
        table = DataTable(np.linspace(0.0, 10.0, 100))
        manager = DatasetManager()
        manager.register("d", table, total_budget=10.0)
        runtime = GuptRuntime(manager, rng=0)

        def vandal(block):
            block[:] = -999.0  # blocks are copies; the table is read-only
            return float(np.mean(block))

        runtime.run("d", vandal, TightRange((0.0, 10.0)), epsilon=1.0)
        assert np.array_equal(
            manager.get("d").table.values.ravel(), np.linspace(0.0, 10.0, 100)
        )

    def test_failed_query_rolls_back_and_success_charges_once(self):
        table = DataTable(np.linspace(0.0, 10.0, 100))
        manager = DatasetManager()
        manager.register("d", table, total_budget=10.0)
        runtime = GuptRuntime(manager, rng=0)

        def always_crashes(block):
            raise RuntimeError

        with pytest.raises(ComputationError):
            runtime.run("d", always_crashes, TightRange((0.0, 10.0)), epsilon=1.0)
        # The epsilon is reserved before execution (the budget-attack
        # defense: the platform, not the program, holds the budget) but a
        # query that dies before any private release rolls its
        # reservation back — the analyst learned nothing, so nothing is
        # spent and no hold lingers.
        assert manager.get("d").budget.spent == 0.0
        assert manager.get("d").budget.reserved == 0.0

        # A successful retry charges exactly once.
        runtime.run("d", lambda b: float(np.mean(b)),
                    TightRange((0.0, 10.0)), epsilon=1.0)
        assert manager.get("d").budget.spent == pytest.approx(1.0)
        assert manager.get("d").ledger.total_spent == pytest.approx(1.0)

    @given(dim=st.integers(min_value=1, max_value=6), seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_vector_outputs_fuzzed_shapes(self, dim, seed):
        generator = np.random.default_rng(seed)

        def program(block):
            # Sometimes the right shape, sometimes off by one.
            size = dim if generator.uniform() < 0.7 else dim + 1
            return list(generator.uniform(0, 1, size=size))

        engine = SampleAggregateEngine()
        try:
            release = engine.run(
                DATA, program, epsilon=1.0,
                output_ranges=[(0.0, 1.0)] * dim, block_size=20, rng=seed,
            )
        except ComputationError:
            return
        assert release.value.shape == (dim,)
        assert np.isfinite(release.value).all()
