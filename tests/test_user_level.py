"""Unit tests for user-level (grouped) partitioning."""

import numpy as np
import pytest

from repro.core.sample_aggregate import SampleAggregateEngine
from repro.core.user_level import grouped_plan
from repro.estimators.statistics import Mean
from repro.exceptions import GuptError


@pytest.fixture
def user_labels(rng):
    # 60 users with 1-8 records each.
    sizes = rng.integers(1, 9, size=60)
    return np.repeat(np.arange(60), sizes)


class TestGroupedPlan:
    def test_groups_never_split(self, user_labels):
        plan = grouped_plan(user_labels, num_blocks=8, rng=0)
        for user in np.unique(user_labels):
            rows = set(np.flatnonzero(user_labels == user).tolist())
            containing = [
                i for i, block in enumerate(plan.blocks)
                if rows & set(block.tolist())
            ]
            assert len(containing) == 1
            assert rows <= set(plan.blocks[containing[0]].tolist())

    def test_every_record_covered_exactly_once(self, user_labels):
        plan = grouped_plan(user_labels, num_blocks=8, rng=0)
        assert np.array_equal(
            plan.record_multiplicity(), np.ones(user_labels.size, dtype=int)
        )

    def test_resampling_bounds_user_multiplicity(self, user_labels):
        plan = grouped_plan(user_labels, num_blocks=6, resampling_factor=3, rng=0)
        # Every record (hence every user) appears exactly gamma times.
        assert np.array_equal(
            plan.record_multiplicity(), np.full(user_labels.size, 3)
        )
        assert plan.num_blocks == 18

    def test_blocks_are_balanced(self, user_labels):
        plan = grouped_plan(user_labels, num_blocks=6, rng=0)
        sizes = [len(block) for block in plan.blocks]
        assert max(sizes) - min(sizes) <= 8  # within one max-group size

    def test_more_blocks_than_groups_rejected(self):
        with pytest.raises(GuptError):
            grouped_plan(np.array([0, 0, 1, 1]), num_blocks=3)

    def test_empty_groups_rejected(self):
        with pytest.raises(GuptError):
            grouped_plan(np.array([]), num_blocks=1)

    def test_invalid_num_blocks_rejected(self):
        with pytest.raises(GuptError):
            grouped_plan(np.array([0, 1]), num_blocks=0)

    def test_string_labels_supported(self):
        labels = np.array(["alice", "bob", "alice", "carol"])
        plan = grouped_plan(labels, num_blocks=2, rng=0)
        assert plan.num_blocks == 2
        alice_rows = {0, 2}
        containing = [
            i for i, block in enumerate(plan.blocks)
            if alice_rows & set(block.tolist())
        ]
        assert len(containing) == 1


class TestEngineWithGroupedPlan:
    def test_engine_accepts_grouped_plan(self, rng, user_labels):
        values = rng.uniform(0, 10, size=(user_labels.size, 1))
        plan = grouped_plan(user_labels, num_blocks=8, rng=0)
        engine = SampleAggregateEngine()
        result = engine.run(
            values, Mean(), epsilon=1e9, output_ranges=(0.0, 10.0), plan=plan
        )
        # Blocks have unequal sizes, so the block-mean average is only
        # approximately the global mean — but with noise off it must be
        # close for near-balanced blocks.
        assert result.scalar() == pytest.approx(values.mean(), abs=0.5)
        assert result.num_blocks == 8

    def test_plan_size_mismatch_rejected(self, rng, user_labels):
        values = rng.uniform(0, 10, size=(user_labels.size + 5, 1))
        plan = grouped_plan(user_labels, num_blocks=4, rng=0)
        engine = SampleAggregateEngine()
        with pytest.raises(ValueError):
            engine.run(values, Mean(), epsilon=1.0, output_ranges=(0.0, 10.0), plan=plan)


class TestRuntimeGroupBy:
    def test_user_level_query(self, rng):
        from repro.accounting.manager import DatasetManager
        from repro.core.gupt import GuptRuntime
        from repro.core.range_estimation import TightRange
        from repro.datasets.table import DataTable

        users = np.repeat(np.arange(100.0), 4)
        incomes = rng.uniform(0, 100, size=users.size)
        table = DataTable(
            np.column_stack([users, incomes]),
            column_names=["user", "income"],
        )
        manager = DatasetManager()
        manager.register("incomes", table, total_budget=100.0)
        runtime = GuptRuntime(manager, rng=0)
        result = runtime.run(
            "incomes",
            Mean(column=1),
            TightRange((0.0, 100.0)),
            epsilon=50.0,
            block_size=20,
            group_by="user",
        )
        assert result.scalar() == pytest.approx(incomes.mean(), abs=5.0)
