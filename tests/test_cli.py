"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.loaders import save_csv
from repro.datasets.table import DataTable


@pytest.fixture
def ages_csv(tmp_path, rng):
    path = tmp_path / "ages.csv"
    ages = rng.normal(40, 10, size=3000).clip(0, 150)
    save_csv(DataTable(ages, column_names=["age"]), path)
    return path


class TestInspect:
    def test_prints_shape(self, ages_csv, capsys):
        assert main(["inspect", "--data", str(ages_csv)]) == 0
        out = capsys.readouterr().out
        assert "records   : 3000" in out
        assert "age" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["inspect", "--data", str(tmp_path / "nope.csv")]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_mean_query(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "5.0", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        value = float(out.split("private mean:")[1].split()[0])
        assert 20.0 < value < 60.0
        assert "budget left   : 5" in out

    def test_median_by_column_name(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "median",
            "--column", "age", "--range", "0", "150",
            "--epsilon", "5.0", "--seed", "1",
        ])
        assert code == 0
        assert "private median:" in capsys.readouterr().out

    def test_count_above(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "count-above",
            "--threshold", "40", "--range", "0", "1",
            "--epsilon", "5.0", "--seed", "1",
        ])
        assert code == 0
        value = float(capsys.readouterr().out.split("count-above:")[1].split()[0])
        assert 0.0 <= value <= 1.0

    def test_count_above_requires_threshold(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "count-above",
            "--range", "0", "1", "--epsilon", "1.0",
        ])
        assert code == 2

    def test_accuracy_goal_path(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--accuracy", "0.9", "0.1",
            "--aged-fraction", "0.1", "--block-size", "30", "--seed", "1",
        ])
        assert code == 0
        assert "derived from accuracy goal" in capsys.readouterr().out

    def test_epsilon_and_accuracy_both_rejected(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "1.0",
            "--accuracy", "0.9", "0.1",
        ])
        assert code == 2

    def test_budget_exhaustion_reported(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "3.0", "--budget", "2.0",
        ])
        assert code == 1
        assert "budget exhausted" in capsys.readouterr().err

    def test_auto_block_size(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "2.0",
            "--aged-fraction", "0.1", "--block-size", "auto", "--seed", "2",
        ])
        assert code == 0
        assert "x 1 records" in capsys.readouterr().out  # optimizer picks beta=1


class TestStats:
    def test_stats_prints_observability_snapshot(self, ages_csv, capsys):
        code = main([
            "stats", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "1.5", "--budget", "5.0",
            "--seed", "1",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)

        # Phase timings for the whole request path.
        for phase in ("runtime.run", "runtime.resolve", "runtime.sample",
                      "runtime.aggregate", "runtime.range_estimation"):
            assert snapshot["histograms"][f'{phase}.seconds{{dataset="cli"}}']["count"] >= 1

        # Block success/fallback/kill counts.
        counters = snapshot["counters"]
        assert counters["blocks.executed"] >= 1
        assert counters["blocks.success"] + counters["blocks.fallback"] == (
            counters["blocks.executed"]
        )
        assert counters["blocks.killed"] == 0

        # Per-dataset budget burn-down.
        gauges = snapshot["gauges"]
        assert gauges['budget.epsilon_spent{dataset="cli"}'] == pytest.approx(1.5)
        assert gauges['budget.epsilon_remaining{dataset="cli"}'] == pytest.approx(3.5)

        # And the trace itself.
        assert any(s["name"] == "runtime.run" for s in snapshot["spans"])

    def test_stats_registry_is_per_invocation(self, ages_csv, capsys):
        snapshots = []
        for _ in range(2):
            assert main([
                "stats", "--data", str(ages_csv), "--program", "mean",
                "--range", "0", "150", "--epsilon", "1.0", "--seed", "1",
            ]) == 0
            snapshots.append(json.loads(capsys.readouterr().out))
        # Each snapshot describes only its own query — nothing accumulates
        # across invocations or leaks into the process default.
        for snapshot in snapshots:
            assert snapshot["counters"]['runtime.queries{dataset="cli"}'] == 1

    def test_stats_validates_epsilon_accuracy_exclusivity(self, ages_csv, capsys):
        code = main([
            "stats", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "1.0",
            "--accuracy", "0.9", "0.1",
        ])
        assert code == 2

    def test_stats_count_above_requires_threshold(self, ages_csv, capsys):
        code = main([
            "stats", "--data", str(ages_csv), "--program", "count-above",
            "--range", "0", "1", "--epsilon", "1.0",
        ])
        assert code == 2


class TestServe:
    def test_serve_exact_fit_budget(self, ages_csv, capsys):
        # 4 analysts x 4 queries at epsilon 0.5 against a budget of 4.0:
        # exactly 8 commits, the rest refused, queue drained.
        code = main([
            "serve", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "0.5", "--budget", "4.0",
            "--analysts", "4", "--queries", "4",
            "--max-inflight", "16", "--queue-depth", "32", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "traffic       : 4 analysts x 4 queries" in out
        assert "completed     : 8 ok, 8 refused" in out
        assert "epsilon spent : 4 of 4 (8 ledger entries)" in out
        assert "queue depth   : 0 after drain" in out

    def test_serve_admission_control_rejects_overflow(self, ages_csv, capsys):
        # A queue one deep with one analyst hammering it: some queries
        # must be refused at admission, yet every one resolves and the
        # books still balance.
        code = main([
            "serve", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "0.25", "--budget", "50.0",
            "--analysts", "2", "--queries", "8",
            "--max-inflight", "2", "--queue-depth", "1", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed     : " in out
        assert "queue depth   : 0 after drain" in out

    def test_serve_validates_epsilon_accuracy_exclusivity(self, ages_csv, capsys):
        code = main([
            "serve", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150",
        ])
        assert code == 2

    def test_serve_validates_traffic_shape(self, ages_csv, capsys):
        code = main([
            "serve", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "0.5", "--analysts", "0",
        ])
        assert code == 2

    def test_serve_simulated_traffic_on_sharded_backend(self, ages_csv, capsys):
        """The in-process load harness runs its queries through the
        sharded backend when asked to."""
        code = main([
            "serve", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "0.5", "--budget", "4.0",
            "--backend", "sharded", "--shards", "2", "--workers", "2",
            "--analysts", "2", "--queries", "2",
            "--max-inflight", "8", "--queue-depth", "16", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed     : 4 ok, 0 refused" in out
        assert "queue depth   : 0 after drain" in out


class TestServeHttp:
    """``serve --http`` must honor the execution flags end-to-end.

    Each matrix entry stands up the real front door via ``main``, runs
    one seeded query over the wire, and the released value must be
    bit-identical across backends: the execution flags reach
    ``GuptService`` (a dropped ``--shards`` would change the plan and
    the bits; a dropped ``--backend`` would be invisible — so the matrix
    also includes a shard-count variant that MUST differ).
    """

    MATRIX = [
        ["--backend", "serial", "--shards", "2"],
        ["--backend", "vectorized", "--shards", "2"],
        ["--backend", "sharded", "--shards", "2", "--workers", "2"],
    ]

    def _serve_and_query(self, ages_csv, extra):
        """Serve over HTTP in a subprocess on an *ephemeral* port.

        Anti-flake convention (see DESIGN.md): the server binds port 0
        and announces the kernel-chosen port on stdout after the listener
        is up; the test blocks on that line instead of probing a
        pre-picked port (a TOCTOU race) or polling ``healthz`` in a
        sleep loop.
        """
        import os
        import subprocess
        import sys

        from repro.server import protocol
        from repro.server.client import GuptClient

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = {
            **os.environ,
            "PYTHONPATH": os.pathsep.join(
                p for p in (src, os.environ.get("PYTHONPATH")) if p
            ),
        }
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "serve", "--data", str(ages_csv),
                "--http", "127.0.0.1:0",
                "--http-seconds", "4", "--admin-token", "matrix-admin",
                "--budget", "10.0", "--seed", "1", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            # Blocks until the server prints its bound address — which
            # happens strictly after the listener accepts connections.
            line = process.stdout.readline().strip()
            assert line.startswith("front door"), f"unexpected announce: {line!r}"
            port = int(line.rsplit(":", 1)[1])
            client = GuptClient("127.0.0.1", port)
            try:
                token = client.enroll("analyst", "matrix", "matrix-admin")
                analyst = GuptClient("127.0.0.1", port, token=token)
                try:
                    body = protocol.query_request_to_wire(
                        "cli", {"name": "mean"}, [(0.0, 150.0)],
                        epsilon=0.5, seed=7,
                    )
                    response = analyst.result(analyst.submit(body), timeout=15)
                finally:
                    analyst.close()
            finally:
                client.close()
            code = process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=5.0)
        assert code == 0, f"serve --http exited {code} for {extra}"
        assert response is not None and response.ok, response
        return tuple(response.value)

    def test_http_flag_matrix_is_bit_identical(self, ages_csv, capsys):
        released = {
            " ".join(extra): self._serve_and_query(ages_csv, extra)
            for extra in self.MATRIX
        }
        assert len(set(released.values())) == 1, released

    def test_http_shard_count_reaches_the_plan(self, ages_csv, capsys):
        """--shards is forwarded, not decorative: changing it alone
        changes the released bits."""
        at_two = self._serve_and_query(
            ages_csv, ["--backend", "sharded", "--shards", "2"]
        )
        at_four = self._serve_and_query(
            ages_csv, ["--backend", "sharded", "--shards", "4"]
        )
        assert at_two != at_four
