"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.loaders import save_csv
from repro.datasets.table import DataTable


@pytest.fixture
def ages_csv(tmp_path, rng):
    path = tmp_path / "ages.csv"
    ages = rng.normal(40, 10, size=3000).clip(0, 150)
    save_csv(DataTable(ages, column_names=["age"]), path)
    return path


class TestInspect:
    def test_prints_shape(self, ages_csv, capsys):
        assert main(["inspect", "--data", str(ages_csv)]) == 0
        out = capsys.readouterr().out
        assert "records   : 3000" in out
        assert "age" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["inspect", "--data", str(tmp_path / "nope.csv")]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_mean_query(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "5.0", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        value = float(out.split("private mean:")[1].split()[0])
        assert 20.0 < value < 60.0
        assert "budget left   : 5" in out

    def test_median_by_column_name(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "median",
            "--column", "age", "--range", "0", "150",
            "--epsilon", "5.0", "--seed", "1",
        ])
        assert code == 0
        assert "private median:" in capsys.readouterr().out

    def test_count_above(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "count-above",
            "--threshold", "40", "--range", "0", "1",
            "--epsilon", "5.0", "--seed", "1",
        ])
        assert code == 0
        value = float(capsys.readouterr().out.split("count-above:")[1].split()[0])
        assert 0.0 <= value <= 1.0

    def test_count_above_requires_threshold(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "count-above",
            "--range", "0", "1", "--epsilon", "1.0",
        ])
        assert code == 2

    def test_accuracy_goal_path(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--accuracy", "0.9", "0.1",
            "--aged-fraction", "0.1", "--block-size", "30", "--seed", "1",
        ])
        assert code == 0
        assert "derived from accuracy goal" in capsys.readouterr().out

    def test_epsilon_and_accuracy_both_rejected(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "1.0",
            "--accuracy", "0.9", "0.1",
        ])
        assert code == 2

    def test_budget_exhaustion_reported(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "3.0", "--budget", "2.0",
        ])
        assert code == 1
        assert "budget exhausted" in capsys.readouterr().err

    def test_auto_block_size(self, ages_csv, capsys):
        code = main([
            "query", "--data", str(ages_csv), "--program", "mean",
            "--range", "0", "150", "--epsilon", "2.0",
            "--aged-fraction", "0.1", "--block-size", "auto", "--seed", "2",
        ])
        assert code == 0
        assert "x 1 records" in capsys.readouterr().out  # optimizer picks beta=1
