"""Unit tests for the dataset manager."""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.datasets.table import DataTable
from repro.exceptions import DatasetError, PrivacyBudgetExhausted


@pytest.fixture
def table():
    return DataTable(np.arange(100.0))


class TestRegistration:
    def test_register_and_get(self, table):
        manager = DatasetManager()
        manager.register("ages", table, total_budget=1.0)
        assert manager.get("ages").table is table

    def test_duplicate_name_rejected(self, table):
        manager = DatasetManager()
        manager.register("ages", table, total_budget=1.0)
        with pytest.raises(DatasetError):
            manager.register("ages", table, total_budget=1.0)

    def test_empty_name_rejected(self, table):
        with pytest.raises(DatasetError):
            DatasetManager().register("", table, total_budget=1.0)

    def test_unknown_lookup_rejected(self):
        with pytest.raises(DatasetError):
            DatasetManager().get("missing")

    def test_names_in_order(self, table):
        manager = DatasetManager()
        manager.register("b", table, total_budget=1.0)
        manager.register("a", table, total_budget=1.0)
        assert manager.names() == ["b", "a"]

    def test_unregister(self, table):
        manager = DatasetManager()
        manager.register("ages", table, total_budget=1.0)
        manager.unregister("ages")
        with pytest.raises(DatasetError):
            manager.get("ages")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(DatasetError):
            DatasetManager().unregister("missing")


class TestAgedData:
    def test_no_aged_by_default(self, table):
        manager = DatasetManager()
        registered = manager.register("ages", table, total_budget=1.0)
        assert registered.aged is None
        assert registered.table.num_records == 100

    def test_aged_fraction_carves_out_slice(self, table):
        manager = DatasetManager()
        registered = manager.register(
            "ages", table, total_budget=1.0, aged_fraction=0.2, rng=0
        )
        assert registered.aged.num_records == 20
        assert registered.table.num_records == 80

    def test_aged_slice_is_disjoint_from_live(self, table):
        manager = DatasetManager()
        registered = manager.register(
            "ages", table, total_budget=1.0, aged_fraction=0.3, rng=0
        )
        aged = set(registered.aged.values.ravel())
        live = set(registered.table.values.ravel())
        assert not aged & live
        assert aged | live == set(range(100))

    def test_explicit_aged_table(self, table):
        aged = DataTable(np.arange(10.0))
        manager = DatasetManager()
        registered = manager.register(
            "ages", table, total_budget=1.0, aged_table=aged
        )
        assert registered.aged is aged
        assert registered.table.num_records == 100

    def test_both_aged_options_rejected(self, table):
        aged = DataTable(np.arange(10.0))
        with pytest.raises(DatasetError):
            DatasetManager().register(
                "ages", table, total_budget=1.0,
                aged_fraction=0.1, aged_table=aged,
            )

    @pytest.mark.parametrize("fraction", [1.0, -0.5, 2.0])
    def test_invalid_fraction_rejected(self, table, fraction):
        with pytest.raises(DatasetError):
            DatasetManager().register(
                "ages", table, total_budget=1.0, aged_fraction=fraction
            )

    def test_zero_fraction_means_no_aged_data(self, table):
        registered = DatasetManager().register(
            "ages", table, total_budget=1.0, aged_fraction=0.0
        )
        assert registered.aged is None


class TestCharging:
    def test_charge_updates_budget_and_ledger(self, table):
        manager = DatasetManager()
        registered = manager.register("ages", table, total_budget=2.0)
        registered.charge(0.5, "mean")
        assert manager.remaining_budget("ages") == pytest.approx(1.5)
        assert registered.ledger.total_spent == pytest.approx(0.5)

    def test_ledger_matches_budget_invariant(self, table):
        manager = DatasetManager()
        registered = manager.register("ages", table, total_budget=5.0)
        for i in range(6):
            registered.charge(0.5, f"q{i}")
        assert registered.ledger.total_spent == pytest.approx(registered.budget.spent)

    def test_refused_charge_not_in_ledger(self, table):
        manager = DatasetManager()
        registered = manager.register("ages", table, total_budget=1.0)
        with pytest.raises(PrivacyBudgetExhausted):
            registered.charge(2.0, "greedy")
        assert len(registered.ledger) == 0


class TestInvalidationHooks:
    def test_hook_fires_on_register_and_unregister(self, table):
        manager = DatasetManager()
        calls = []
        manager.add_invalidation_hook(calls.append)
        manager.register("ages", table, total_budget=1.0)
        manager.unregister("ages")
        assert calls == ["ages", "ages"]

    def test_add_returns_unsubscribe(self, table):
        manager = DatasetManager()
        calls = []
        unhook = manager.add_invalidation_hook(calls.append)
        manager.register("ages", table, total_budget=1.0)
        assert calls == ["ages"]
        unhook()
        unhook()  # idempotent
        manager.unregister("ages")
        assert calls == ["ages"]  # no further notifications

    def test_remove_unknown_hook_is_noop(self, table):
        DatasetManager().remove_invalidation_hook(lambda name: None)
