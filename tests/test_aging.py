"""Unit tests for the aging-of-sensitivity model."""

import numpy as np
import pytest

from repro.core.aging import AgedData
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean, Median
from repro.exceptions import GuptError


@pytest.fixture
def aged(rng):
    return AgedData(DataTable(rng.normal(50, 10, size=1000)), rng=0)


class TestFullOutput:
    def test_matches_direct_program_call(self, aged):
        assert aged.full_output(Mean())[0] == pytest.approx(
            aged.table.values.mean()
        )

    def test_cached_per_program(self, aged):
        calls = {"n": 0}

        def counting(values):
            calls["n"] += 1
            return float(np.mean(values))

        aged.full_output(counting)
        aged.full_output(counting)
        assert calls["n"] == 1

    def test_wrong_dimension_rejected(self, aged):
        with pytest.raises(GuptError):
            aged.full_output(lambda v: [1.0, 2.0], output_dimension=1)


class TestBlockOutputs:
    def test_shape(self, aged):
        outputs = aged.block_outputs(Mean(), block_size=100)
        assert outputs.shape == (10, 1)

    def test_remainder_dropped(self, aged):
        outputs = aged.block_outputs(Mean(), block_size=300)
        assert outputs.shape == (3, 1)

    def test_blocks_estimate_the_statistic(self, aged):
        outputs = aged.block_outputs(Mean(), block_size=100)
        assert outputs.mean() == pytest.approx(aged.table.values.mean(), abs=1.5)

    def test_cached_per_block_size(self, aged):
        first = aged.block_outputs(Mean(), block_size=50)
        second = aged.block_outputs(Mean(), block_size=50)
        assert first is second

    def test_invalid_block_size_rejected(self, aged):
        with pytest.raises(GuptError):
            aged.block_outputs(Mean(), block_size=0)
        with pytest.raises(GuptError):
            aged.block_outputs(Mean(), block_size=10_000)


class TestErrorTerms:
    def test_estimation_error_nonnegative(self, aged):
        error = aged.estimation_error(Mean(), block_size=50)
        assert np.all(error >= 0)

    def test_mean_has_near_zero_estimation_error(self, aged):
        # The average of block means IS the truncated-sample mean.
        error = aged.estimation_error(Mean(), block_size=100)
        assert error[0] < 1.0

    def test_median_estimation_error_shrinks_with_block_size(self, rng):
        skewed = AgedData(DataTable(rng.lognormal(0, 1, size=2000)), rng=0)
        small = skewed.estimation_error(Median(), block_size=1)[0]
        large = skewed.estimation_error(Median(), block_size=500)[0]
        assert large < small

    def test_mean_estimation_variance_is_sigma2_over_n(self, aged):
        # For the mean, Var(block mean)/l = (sigma^2/beta)/(n/beta)
        # = sigma^2/n regardless of the block size.
        sigma2_over_n = aged.table.values.var() / aged.num_records
        for beta in (10, 50, 100):
            measured = aged.estimation_variance(Mean(), block_size=beta)[0]
            assert measured == pytest.approx(sigma2_over_n, rel=0.6)

    def test_single_block_variance_is_zero(self, aged):
        assert aged.estimation_variance(Mean(), block_size=1000)[0] == 0.0


class TestMinAlpha:
    def test_large_aged_slice_allows_alpha_zero(self):
        aged = AgedData(DataTable(np.arange(1000.0)), rng=0)
        assert aged.min_alpha(live_records=500) == 0.0

    def test_small_aged_slice_forces_positive_alpha(self):
        aged = AgedData(DataTable(np.arange(10.0)), rng=0)
        alpha = aged.min_alpha(live_records=10_000)
        # block size n^(1-alpha) must fit in 10 records.
        assert 10_000 ** (1 - alpha) <= 10.0 + 1e-6

    def test_invalid_live_size_rejected(self):
        aged = AgedData(DataTable(np.arange(10.0)), rng=0)
        with pytest.raises(GuptError):
            aged.min_alpha(live_records=1)


class TestValidation:
    def test_tiny_aged_data_rejected(self):
        with pytest.raises(GuptError):
            AgedData(DataTable([1.0]))
