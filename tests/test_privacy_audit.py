"""Empirical DP audits of the full sample-and-aggregate pipeline.

These tests run the *actual engine* on neighboring datasets and check
the observed privacy loss is consistent with the declared epsilon —
an end-to-end sanity net over the whole noise-calibration path.
"""

import numpy as np
import pytest

from repro.audit.dp_verifier import empirical_epsilon, neighboring
from repro.core.sample_aggregate import SampleAggregateEngine
from repro.estimators.statistics import Mean

EPSILON = 1.0


@pytest.fixture
def data(rng):
    return rng.uniform(0.0, 10.0, size=120)


class TestEngineIsPrivate:
    def test_disjoint_blocks(self, data, rng):
        engine = SampleAggregateEngine()
        # Fixed plan randomness would undercount; fresh generator per call
        # exercises the full mechanism (partition + noise).
        def mechanism(values):
            return engine.run(
                values, Mean(), epsilon=EPSILON, output_ranges=(0.0, 10.0),
                block_size=12, rng=rng,
            ).scalar()

        neighbor = neighboring(data, replacement=10.0)
        measured = empirical_epsilon(mechanism, data, neighbor, trials=1200)
        assert measured < 2.5 * EPSILON

    def test_resampled_blocks(self, data, rng):
        engine = SampleAggregateEngine()

        def mechanism(values):
            return engine.run(
                values, Mean(), epsilon=EPSILON, output_ranges=(0.0, 10.0),
                block_size=12, resampling_factor=3, rng=rng,
            ).scalar()

        neighbor = neighboring(data, replacement=10.0)
        measured = empirical_epsilon(mechanism, data, neighbor, trials=1200)
        assert measured < 2.5 * EPSILON

    def test_clamping_contains_adversarial_outputs(self, rng):
        # A program returning wild values for the target record must be
        # neutralized by clamping — the release cannot exceed the range.
        engine = SampleAggregateEngine()
        data = rng.uniform(0.0, 10.0, size=60)

        def adversarial(block):
            if np.any(np.isclose(block, 10.0)):
                return 1e12
            return float(np.mean(block))

        result = engine.run(
            np.append(data, 10.0), adversarial, epsilon=5.0,
            output_ranges=(0.0, 10.0), block_size=10, rng=0,
        )
        # Mean of clamped outputs is in range; noise at eps=5, 6 blocks has
        # scale 1/3 — the release stays within a few units of the range.
        assert result.scalar() < 20.0

    def test_failed_block_fallback_is_data_independent(self, rng):
        # A crash keyed on the target record must not shift the release
        # beyond what one block's clamped output could.
        engine = SampleAggregateEngine()
        base = rng.uniform(4.0, 6.0, size=60)

        def crashes_on_target(block):
            if np.any(np.isclose(block, 10.0)):
                raise RuntimeError("adversarial crash")
            return float(np.mean(block))

        with_target = np.append(base, 10.0)

        def mechanism(values):
            return engine.run(
                values, crashes_on_target, epsilon=EPSILON,
                output_ranges=(0.0, 10.0), block_size=10, rng=rng,
            ).scalar()

        neighbor = np.append(base, 5.0)  # no crash on this one
        measured = empirical_epsilon(mechanism, with_target, neighbor, trials=1000)
        assert measured < 2.5 * EPSILON
