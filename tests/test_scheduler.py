"""The query scheduler: admission, fairness, timeouts, shutdown, stress.

Two layers of tests:

* **Unit battery** — drives :class:`QueryScheduler` with plain runner
  callables (the scheduler is generic over them), pinning admission
  control, per-dataset FIFO order, round-robin fairness, timeout and
  cancellation semantics, structured-error guarantees and clean
  shutdown.
* **Acceptance stress** — the ISSUE's 32-thread scenario against the
  real :class:`GuptService` at an exact-fit budget: total epsilon never
  exceeds the budget (bit-exact), every admitted query gets exactly one
  terminal response, and the post-drain queue depth reads zero.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.exceptions import GuptError
from repro.observability import MetricsRegistry
from repro.runtime.scheduler import QueryScheduler
from repro.runtime.service import (
    ANALYST,
    OWNER,
    GuptService,
    QueryRequest,
    QueryResponse,
)


def _request(dataset="d"):
    """The scheduler only reads ``request.dataset``; a stub suffices."""
    return SimpleNamespace(dataset=dataset)


def _ok(request):
    return QueryResponse(ok=True, value=(1.0,), epsilon_charged=0.1)


class TestAdmission:
    def test_accepts_and_resolves(self):
        with QueryScheduler(workers=2, metrics=MetricsRegistry()) as scheduler:
            handle = scheduler.submit(_ok, _request())
            response = scheduler.result(handle)
            assert response.ok
            assert response.value == (1.0,)

    def test_per_principal_inflight_limit(self):
        registry = MetricsRegistry()
        gate = threading.Event()

        def blocked(request):
            gate.wait(5.0)
            return _ok(request)

        with QueryScheduler(workers=1, max_inflight=2, metrics=registry) as scheduler:
            first = scheduler.submit(blocked, _request(), principal="eve")
            second = scheduler.submit(blocked, _request(), principal="eve")
            third = scheduler.submit(blocked, _request(), principal="eve")
            other = scheduler.submit(blocked, _request(), principal="bob")
            rejected = scheduler.result(third)
            assert not rejected.ok
            assert "in flight" in rejected.error
            gate.set()
            assert scheduler.result(first).ok
            assert scheduler.result(second).ok
            assert scheduler.result(other).ok  # limits are per principal
        counters = registry.snapshot()["counters"]
        assert counters["scheduler.admission_rejections"] == 1.0

    def test_queue_depth_limit(self):
        gate = threading.Event()

        def blocked(request):
            gate.wait(5.0)
            return _ok(request)

        with QueryScheduler(
            workers=1, max_inflight=64, queue_depth=2, metrics=MetricsRegistry()
        ) as scheduler:
            handles = [scheduler.submit(blocked, _request()) for _ in range(6)]
            gate.set()
            responses = [scheduler.result(h) for h in handles]
        refused = [r for r in responses if not r.ok]
        assert refused and all("queue is full" in r.error for r in refused)
        # Everyone got exactly one terminal answer either way.
        assert len(responses) == 6

    def test_rejection_never_raises(self):
        def boom(request):
            raise RuntimeError("runner should never run")

        with QueryScheduler(
            workers=1, max_inflight=1, metrics=MetricsRegistry()
        ) as scheduler:
            gate = threading.Event()

            def blocked(request):
                gate.wait(5.0)
                return _ok(request)

            scheduler.submit(blocked, _request(), principal="p")
            handle = scheduler.submit(boom, _request(), principal="p")
            response = scheduler.result(handle)  # resolved, not raised
            assert not response.ok
            gate.set()

    def test_unknown_handle_raises(self):
        with QueryScheduler(workers=1, metrics=MetricsRegistry()) as scheduler:
            bogus = SimpleNamespace(id=10_000, dataset="d", principal="")
            with pytest.raises(GuptError, match="unknown query handle"):
                scheduler.result(bogus)


class TestFairnessAndOrder:
    def test_per_dataset_fifo_order(self):
        """Same-dataset queries run strictly in submission order."""
        order: list[int] = []
        lock = threading.Lock()

        def tracked(request):
            with lock:
                order.append(request.index)
            return _ok(request)

        with QueryScheduler(
            workers=4, max_inflight=64, metrics=MetricsRegistry()
        ) as scheduler:
            handles = []
            for i in range(12):
                request = _request("d")
                request.index = i
                handles.append(scheduler.submit(tracked, request))
            for handle in handles:
                scheduler.result(handle)
        assert order == list(range(12))

    def test_one_inflight_per_dataset(self):
        """Two same-dataset queries never overlap, even with idle workers."""
        active = []
        overlap = []
        lock = threading.Lock()

        def tracked(request):
            with lock:
                active.append(request.dataset)
                if active.count(request.dataset) > 1:
                    overlap.append(request.dataset)
            time.sleep(0.02)
            with lock:
                active.remove(request.dataset)
            return _ok(request)

        with QueryScheduler(workers=4, metrics=MetricsRegistry()) as scheduler:
            handles = [scheduler.submit(tracked, _request("d")) for _ in range(6)]
            for handle in handles:
                scheduler.result(handle)
        assert overlap == []

    def test_round_robin_across_datasets(self):
        """A hot dataset cannot starve the others: everyone finishes."""
        finished: list[str] = []
        lock = threading.Lock()

        def tracked(request):
            time.sleep(0.005)
            with lock:
                finished.append(request.dataset)
            return _ok(request)

        with QueryScheduler(
            workers=2, max_inflight=64, metrics=MetricsRegistry()
        ) as scheduler:
            handles = [scheduler.submit(tracked, _request("hot")) for _ in range(8)]
            handles += [scheduler.submit(tracked, _request("cold"))]
            for handle in handles:
                scheduler.result(handle)
        # The single cold query does not finish last behind the hot burst.
        assert finished.index("cold") < len(finished) - 1

    def test_distinct_datasets_run_concurrently(self):
        barrier = threading.Barrier(2, timeout=5.0)

        def meet(request):
            barrier.wait()  # deadlocks (and times out) unless both overlap
            return _ok(request)

        with QueryScheduler(workers=2, metrics=MetricsRegistry()) as scheduler:
            a = scheduler.submit(meet, _request("a"))
            b = scheduler.submit(meet, _request("b"))
            assert scheduler.result(a).ok
            assert scheduler.result(b).ok


class TestTimeoutsAndCancellation:
    def test_queued_query_times_out_without_running(self):
        registry = MetricsRegistry()
        gate = threading.Event()
        ran = []

        def blocked(request):
            gate.wait(5.0)
            return _ok(request)

        def tracked(request):
            ran.append(True)
            return _ok(request)

        with QueryScheduler(
            workers=1, query_timeout=0.1, metrics=registry
        ) as scheduler:
            scheduler.submit(blocked, _request())
            handle = scheduler.submit(tracked, _request())
            response = scheduler.result(handle)
            assert not response.ok
            assert "timed out before dispatch" in response.error
            assert "no budget was spent" in response.error
            gate.set()
        assert ran == []  # the timed-out query never executed
        assert registry.snapshot()["counters"]["scheduler.timeout_kills"] >= 1.0

    def test_running_query_timeout_discards_result(self):
        def slow(request):
            time.sleep(0.25)
            return QueryResponse(ok=True, value=(42.0,), epsilon_charged=0.5)

        with QueryScheduler(
            workers=1, query_timeout=0.05, metrics=MetricsRegistry()
        ) as scheduler:
            handle = scheduler.submit(slow, _request())
            response = scheduler.result(handle)
        assert not response.ok
        assert "timed out while running" in response.error
        # The committed epsilon is reported as spent, not refunded.
        assert "0.5" in response.error
        assert response.value == ()  # the release never reaches the caller

    def test_cancel_queued_query(self):
        gate = threading.Event()

        def blocked(request):
            gate.wait(5.0)
            return _ok(request)

        with QueryScheduler(workers=1, metrics=MetricsRegistry()) as scheduler:
            scheduler.submit(blocked, _request())
            handle = scheduler.submit(_ok, _request())
            assert scheduler.cancel(handle)
            response = scheduler.result(handle)
            assert not response.ok and "cancelled" in response.error
            assert not scheduler.cancel(handle)  # already terminal
            gate.set()

    def test_cannot_cancel_running_query(self):
        started = threading.Event()
        gate = threading.Event()

        def blocked(request):
            started.set()
            gate.wait(5.0)
            return _ok(request)

        with QueryScheduler(workers=1, metrics=MetricsRegistry()) as scheduler:
            handle = scheduler.submit(blocked, _request())
            assert started.wait(5.0)
            assert not scheduler.cancel(handle)
            gate.set()
            assert scheduler.result(handle).ok

    def test_result_wait_timeout_returns_none(self):
        gate = threading.Event()

        def blocked(request):
            gate.wait(5.0)
            return _ok(request)

        with QueryScheduler(workers=1, metrics=MetricsRegistry()) as scheduler:
            handle = scheduler.submit(blocked, _request())
            assert scheduler.result(handle, timeout=0.05) is None
            gate.set()
            assert scheduler.result(handle).ok


class TestShutdown:
    def test_drain_settles_everything(self):
        registry = MetricsRegistry()
        scheduler = QueryScheduler(workers=2, max_inflight=64, metrics=registry)
        handles = [scheduler.submit(_ok, _request(f"d{i % 3}")) for i in range(9)]
        scheduler.close(drain=True)
        assert all(scheduler.result(h).ok for h in handles)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["scheduler.queue_depth"] == 0.0
        assert snapshot["gauges"]["scheduler.running"] == 0.0

    def test_immediate_close_refuses_queued(self):
        gate = threading.Event()

        def blocked(request):
            gate.wait(5.0)
            return _ok(request)

        scheduler = QueryScheduler(workers=1, metrics=MetricsRegistry())
        running = scheduler.submit(blocked, _request())
        queued = scheduler.submit(_ok, _request())
        gate.set()
        scheduler.close(drain=False)
        queued_response = scheduler.result(queued)
        # The queued query resolved structurally either way: normally if
        # the worker got to it before close, as a shutdown refusal if not.
        assert queued_response is not None
        assert scheduler.result(running) is not None

    def test_submit_after_close_is_structured(self):
        scheduler = QueryScheduler(workers=1, metrics=MetricsRegistry())
        scheduler.close()
        handle = scheduler.submit(_ok, _request())
        response = scheduler.result(handle)
        assert not response.ok
        assert "shutting down" in response.error

    def test_runner_exception_becomes_structured_response(self):
        def boom(request):
            raise ValueError("kaboom")

        with QueryScheduler(workers=1, metrics=MetricsRegistry()) as scheduler:
            handle = scheduler.submit(boom, _request())
            response = scheduler.result(handle)
        assert not response.ok
        assert "internal error" in response.error
        assert "kaboom" not in response.error  # no internal detail leaks

    def test_invalid_configuration_rejected(self):
        for kwargs in (
            dict(workers=0),
            dict(max_inflight=0),
            dict(queue_depth=0),
            dict(query_timeout=0.0),
        ):
            with pytest.raises(GuptError):
                QueryScheduler(metrics=MetricsRegistry(), **kwargs)


class TestServiceStressAcceptance:
    """The ISSUE's 32-thread acceptance scenario on the real service."""

    THREADS = 32
    EPSILON = 0.25  # binary-exact: 8 * 0.25 == 2.0
    BUDGET = 2.0
    FITS = 8

    @staticmethod
    def _mean(block):
        return float(np.mean(block))

    @pytest.mark.parametrize(
        "durable", [False, True], ids=["in-memory", "journaled"]
    )
    def test_exact_fit_budget_under_contention(self, durable, tmp_path):
        registry = MetricsRegistry()
        state_dir = str(tmp_path) if durable else None
        service = GuptService(
            metrics=registry,
            rng=2024,
            scheduler_workers=4,
            max_inflight=self.THREADS,
            queue_depth=self.THREADS,
            state_dir=state_dir,
        )
        owner = service.enroll(OWNER, "owner")
        rng = np.random.default_rng(7)
        table = DataTable(rng.uniform(0.0, 10.0, size=(64, 1)), column_names=("x",))
        service.register_dataset(owner.token, "shared", table, total_budget=self.BUDGET)
        analysts = [
            service.enroll(ANALYST, f"a{i}") for i in range(self.THREADS)
        ]

        barrier = threading.Barrier(self.THREADS)
        handles: list = [None] * self.THREADS

        def attack(slot: int) -> None:
            request = QueryRequest(
                dataset="shared",
                program=self._mean,
                range_strategy=TightRange(((0.0, 10.0),)),
                epsilon=self.EPSILON,
                block_size=8,
                query_name=f"q{slot}",
                seed=slot,
            )
            barrier.wait()
            handles[slot] = service.submit(analysts[slot].token, request)

        threads = [
            threading.Thread(target=attack, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        responses = [service.result(handle) for handle in handles]
        # Exactly one terminal response per admitted query; asking again
        # returns the very same terminal object.
        assert all(r is not None for r in responses)
        again = [service.result(handle) for handle in handles]
        assert all(a is b for a, b in zip(responses, again))

        succeeded = [r for r in responses if r.ok]
        refused = [r for r in responses if not r.ok]
        # The exact-fit budget admits exactly FITS releases — bit-exact,
        # no epsilon slop.
        assert len(succeeded) == self.FITS
        assert len(refused) == self.THREADS - self.FITS
        assert all(r.epsilon_charged == self.EPSILON for r in succeeded)
        assert all(r.epsilon_charged == 0.0 for r in refused)
        assert all(r.error for r in refused)

        description = service.describe_dataset(owner.token, "shared")
        assert description.remaining_budget == 0.0
        entries = service.ledger_entries(owner.token, "shared")
        assert len(entries) == self.FITS
        assert sum(epsilon for _, epsilon in entries) == self.BUDGET

        service.close()
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["scheduler.queue_depth"] == 0.0
        assert snapshot["gauges"]["scheduler.running"] == 0.0
        assert snapshot["counters"]["scheduler.submitted"] == float(self.THREADS)

        if durable:
            # Cold replay of the contention storm: exactly FITS commits
            # survive on disk, spending the budget to the last bit, with
            # every refused reserve either absent or rolled back.
            from repro.accounting.journal import journal_path, recover

            state = recover(journal_path(state_dir)).datasets["shared"]
            assert state.spent == self.BUDGET
            assert state.remaining == 0.0
            assert len(state.committed) == self.FITS
            assert state.conservative == 0
            assert not state.pending

    def test_scheduled_results_match_serial_bit_for_bit(self):
        """Seeded queries: contention cannot perturb a single bit."""

        def run_serial() -> list[tuple[float, ...]]:
            service = GuptService(metrics=MetricsRegistry(), rng=555)
            owner = service.enroll(OWNER)
            analyst = service.enroll(ANALYST)
            rng = np.random.default_rng(7)
            table = DataTable(
                rng.uniform(0.0, 10.0, size=(64, 1)), column_names=("x",)
            )
            service.register_dataset(owner.token, "d", table, total_budget=50.0)
            values = []
            for i in range(10):
                response = service.execute(analyst.token, QueryRequest(
                    dataset="d",
                    program=self._mean,
                    range_strategy=TightRange(((0.0, 10.0),)),
                    epsilon=0.5,
                    block_size=8,
                    seed=1000 + i,
                ))
                assert response.ok
                values.append(response.value)
            service.close()
            return values

        def run_scheduled() -> list[tuple[float, ...]]:
            service = GuptService(
                metrics=MetricsRegistry(), rng=777, scheduler_workers=4,
                max_inflight=32, queue_depth=32,
            )
            owner = service.enroll(OWNER)
            analyst = service.enroll(ANALYST)
            rng = np.random.default_rng(7)
            table = DataTable(
                rng.uniform(0.0, 10.0, size=(64, 1)), column_names=("x",)
            )
            service.register_dataset(owner.token, "d", table, total_budget=50.0)
            # Submit in reverse to force a different interleaving than
            # the serial loop; seeds pin the randomness regardless.
            handles = {}
            for i in reversed(range(10)):
                handles[i] = service.submit(analyst.token, QueryRequest(
                    dataset="d",
                    program=self._mean,
                    range_strategy=TightRange(((0.0, 10.0),)),
                    epsilon=0.5,
                    block_size=8,
                    seed=1000 + i,
                ))
            values = []
            for i in range(10):
                response = service.result(handles[i])
                assert response.ok
                values.append(response.value)
            service.close()
            return values

        assert run_serial() == run_scheduled()
