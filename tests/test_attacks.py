"""Tests for the side-channel attack harness (the Table 1 evidence)."""

import numpy as np
import pytest

from repro.attacks.budget_attack import (
    budget_attack_against_gupt,
    budget_attack_against_pinq,
)
from repro.attacks.harness import (
    budget_attack_outcomes,
    run_all_attacks,
    state_attack_on_airavat,
    state_attack_on_gupt,
    state_attack_on_pinq,
    timing_attack_on,
)
from repro.attacks.state_attack import (
    GlobalChannelProgram,
    InstanceStateProgram,
    read_global_channel,
    reset_global_channel,
)
from repro.attacks.timing_attack import StallOnTargetProgram, timing_attack_observable


@pytest.fixture
def neighbor_pair(rng):
    base = rng.uniform(0.0, 50.0, size=64)
    with_target = base.copy()
    with_target[0] = 77.25
    return with_target, base


class TestStateAttack:
    def test_gupt_blocks_instance_state(self):
        assert state_attack_on_gupt().leaked is False

    def test_pinq_leaks_instance_state(self):
        assert state_attack_on_pinq().leaked is True

    def test_airavat_leaks_global_state(self):
        assert state_attack_on_airavat().leaked is True

    def test_instance_program_flags_target_on_direct_call(self):
        program = InstanceStateProgram(target=5.0)
        program(np.array([[1.0], [5.0]]))
        assert program.saw_target

    def test_instance_program_ignores_absent_target(self):
        program = InstanceStateProgram(target=5.0)
        program(np.array([[1.0], [2.0]]))
        assert not program.saw_target

    def test_global_channel_roundtrip(self):
        reset_global_channel()
        GlobalChannelProgram(target=3.0)(np.array([[3.0]]))
        assert read_global_channel() is True
        reset_global_channel()
        assert read_global_channel() is False


class TestBudgetAttack:
    def test_pinq_meter_leaks(self, neighbor_pair):
        with_target, without_target = neighbor_pair
        assert budget_attack_against_pinq(with_target, without_target, 77.25)

    def test_gupt_meter_is_data_independent(self, neighbor_pair):
        with_target, without_target = neighbor_pair
        assert not budget_attack_against_gupt(with_target, without_target, 77.25)

    def test_outcome_rows_cover_three_systems(self):
        outcomes = budget_attack_outcomes()
        assert {o.system for o in outcomes} == {"gupt", "pinq", "airavat"}


class TestTimingAttack:
    def test_stall_program_sleeps_only_on_target(self):
        import time

        program = StallOnTargetProgram(target=9.0, delay=0.15)
        started = time.perf_counter()
        program(np.array([[1.0]]))
        fast = time.perf_counter() - started
        started = time.perf_counter()
        program(np.array([[9.0]]))
        slow = time.perf_counter() - started
        assert slow - fast > 0.1

    def test_observable_threshold(self):
        assert timing_attack_observable(1.0, 0.5, resolution=0.05)
        assert not timing_attack_observable(1.0, 1.01, resolution=0.05)

    def test_gupt_defense_hides_the_stall(self):
        assert timing_attack_on("gupt").leaked is False

    def test_undefended_system_leaks(self):
        assert timing_attack_on("pinq").leaked is True


class TestFullMatrix:
    def test_matches_papers_table1(self):
        outcomes = run_all_attacks()
        expected_leaks = {
            ("gupt", "state"): False,
            ("pinq", "state"): True,
            ("airavat", "state"): True,
            ("gupt", "budget"): False,
            ("pinq", "budget"): True,
            ("airavat", "budget"): False,
            ("gupt", "timing"): False,
            ("pinq", "timing"): True,
            ("airavat", "timing"): True,
        }
        measured = {(o.system, o.attack): o.leaked for o in outcomes}
        assert measured == expected_leaks
