"""Transactional budget accounting under real thread contention.

The seed implementation had a latent check-then-spend race: a caller
could test ``can_afford`` and then ``charge``, and two interleaved
callers could both pass the test on the last slice of budget.  These
tests pin the fix — two-phase reservations — at its sharpest point: an
*exact-fit* budget hammered by 32 threads, asserted bit-exactly (the
test values are binary fractions, so float sums are exact and no
epsilon-slop can hide an overspend).
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.accounting.budget import PrivacyBudget
from repro.accounting.manager import BudgetReservation, DatasetManager
from repro.datasets.table import DataTable
from repro.exceptions import GuptError, InvalidPrivacyParameter, PrivacyBudgetExhausted
from repro.observability import MetricsRegistry

THREADS = 32
#: Binary-exact slice: 0.25 * 8 == 2.0 with zero rounding.
EPSILON = 0.25
TOTAL = 2.0
FITS = 8  # how many EPSILON slices the budget holds, exactly


def _table() -> DataTable:
    rng = np.random.default_rng(4242)
    return DataTable(rng.uniform(0.0, 1.0, size=(64, 1)), column_names=("x",))


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on ``threads`` threads through one barrier."""
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def body(index: int) -> None:
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors


class TestExactFitRace:
    """The 32-thread regression for the check-then-spend race."""

    def test_direct_charges_never_overspend(self):
        budget = PrivacyBudget(TOTAL, dataset="exact-fit")
        admitted = []

        def worker(index: int) -> None:
            try:
                budget.charge(EPSILON)
            except PrivacyBudgetExhausted:
                return
            admitted.append(index)

        _hammer(worker)
        assert len(admitted) == FITS
        assert budget.spent == TOTAL  # bit-exact, no tolerance
        assert budget.remaining == 0.0

    def test_reserve_commit_never_overspends(self):
        budget = PrivacyBudget(TOTAL, dataset="exact-fit")
        admitted = []

        def worker(index: int) -> None:
            try:
                reservation_id = budget.reserve(EPSILON)
            except PrivacyBudgetExhausted:
                return
            budget.commit_reservation(reservation_id)
            admitted.append(index)

        _hammer(worker)
        assert len(admitted) == FITS
        assert budget.spent == TOTAL
        assert budget.reserved == 0.0

    def test_check_then_spend_is_safe_through_reservations(self):
        """The historical attack: everyone checks first, then spends.

        ``can_afford`` can say yes to all 32 threads at once, but the
        reservation step re-checks atomically, so the budget still
        cannot be oversubscribed.
        """
        budget = PrivacyBudget(TOTAL, dataset="exact-fit")
        passed_check = []
        committed = []

        def worker(index: int) -> None:
            if budget.can_afford(EPSILON):
                passed_check.append(index)
            try:
                reservation_id = budget.reserve(EPSILON)
            except PrivacyBudgetExhausted:
                return
            budget.commit_reservation(reservation_id)
            committed.append(index)

        _hammer(worker)
        # The stale check may admit any number of threads...
        assert len(passed_check) >= FITS
        # ...but the transactional spend admits exactly the budget's worth.
        assert len(committed) == FITS
        assert budget.spent == TOTAL

    def test_rollback_storm_spends_nothing(self):
        """32 threads reserve and roll back concurrently; budget unscathed."""
        budget = PrivacyBudget(TOTAL, dataset="exact-fit")

        def worker(index: int) -> None:
            try:
                reservation_id = budget.reserve(EPSILON)
            except PrivacyBudgetExhausted:
                return
            budget.release_reservation(reservation_id)

        _hammer(worker)
        assert budget.spent == 0.0
        assert budget.reserved == 0.0
        assert budget.remaining == TOTAL  # bit-exact restore

    def test_manager_ledger_matches_spend_under_contention(self):
        manager = DatasetManager(metrics=MetricsRegistry())
        registered = manager.register("d", _table(), total_budget=TOTAL)

        def worker(index: int) -> None:
            try:
                reservation = registered.reserve(EPSILON, f"q-{index}")
            except PrivacyBudgetExhausted:
                return
            if index % 4 == 0:
                reservation.rollback()
            else:
                reservation.commit()

        _hammer(worker)
        assert registered.budget.spent == registered.ledger.total_spent
        assert registered.budget.spent <= TOTAL
        assert registered.budget.reserved == 0.0


class TestReservationLifecycle:
    def _registered(self):
        manager = DatasetManager(metrics=MetricsRegistry())
        return manager.register("d", _table(), total_budget=TOTAL)

    def test_reserve_holds_budget_until_settled(self):
        registered = self._registered()
        reservation = registered.reserve(EPSILON, "q")
        assert registered.budget.reserved == EPSILON
        assert registered.budget.remaining == TOTAL - EPSILON
        assert registered.budget.spent == 0.0
        assert len(registered.ledger) == 0
        reservation.commit()
        assert registered.budget.reserved == 0.0
        assert registered.budget.spent == EPSILON
        assert registered.ledger.total_spent == EPSILON

    def test_rollback_restores_exact_state(self):
        registered = self._registered()
        before = registered.budget.remaining
        reservation = registered.reserve(EPSILON, "q")
        reservation.rollback()
        assert registered.budget.remaining == before  # bit-exact
        assert len(registered.ledger) == 0

    def test_rollback_is_idempotent(self):
        registered = self._registered()
        reservation = registered.reserve(EPSILON, "q")
        reservation.rollback()
        reservation.rollback()  # no-op, no error
        assert reservation.state == "rolled-back"

    def test_commit_twice_raises(self):
        registered = self._registered()
        reservation = registered.reserve(EPSILON, "q")
        reservation.commit()
        with pytest.raises(GuptError, match="committed"):
            reservation.commit()

    def test_rollback_after_commit_raises(self):
        registered = self._registered()
        reservation = registered.reserve(EPSILON, "q")
        reservation.commit()
        with pytest.raises(GuptError, match="release already happened"):
            reservation.rollback()

    def test_context_manager_commits_on_success(self):
        registered = self._registered()
        with registered.reserve(EPSILON, "q"):
            pass
        assert registered.budget.spent == EPSILON

    def test_context_manager_rolls_back_on_error(self):
        registered = self._registered()
        with pytest.raises(RuntimeError):
            with registered.reserve(EPSILON, "q"):
                raise RuntimeError("program died")
        assert registered.budget.spent == 0.0
        assert registered.budget.reserved == 0.0

    def test_context_manager_respects_explicit_settlement(self):
        registered = self._registered()
        with pytest.raises(RuntimeError):
            with registered.reserve(EPSILON, "q") as reservation:
                reservation.commit(detail="released before the failure")
                raise RuntimeError("failure after the release")
        # The explicit commit stands; the exception does not roll it back.
        assert registered.budget.spent == EPSILON

    def test_exhausted_reserve_touches_nothing(self):
        registered = self._registered()
        holds = [registered.reserve(EPSILON, f"q-{i}") for i in range(FITS)]
        with pytest.raises(PrivacyBudgetExhausted):
            registered.reserve(EPSILON, "one-too-many")
        assert registered.budget.reserved == TOTAL
        for hold in holds:
            hold.rollback()
        assert registered.budget.remaining == TOTAL

    def test_settled_reservation_id_is_dead(self):
        budget = PrivacyBudget(TOTAL)
        reservation_id = budget.reserve(EPSILON)
        budget.commit_reservation(reservation_id)
        with pytest.raises(InvalidPrivacyParameter):
            budget.commit_reservation(reservation_id)
        with pytest.raises(InvalidPrivacyParameter):
            budget.release_reservation(reservation_id)

    def test_many_binary_slices_sum_exactly(self):
        """512 commits of 1/256 over a budget of 2.0: fsum keeps it exact."""
        budget = PrivacyBudget(TOTAL)
        slice_epsilon = 1.0 / 256.0
        committed = 0
        while True:
            try:
                reservation_id = budget.reserve(slice_epsilon)
            except PrivacyBudgetExhausted:
                break
            budget.commit_reservation(reservation_id)
            committed += 1
        assert committed == 512
        assert budget.spent == TOTAL
        assert math.fsum([slice_epsilon] * committed) == TOTAL
