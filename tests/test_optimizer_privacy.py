"""Release-safety of the optimizer layers: nothing data-derived leaks.

Same technique as tests/test_observability.py: every record in the
dataset — hence every block output, every exact SVT aggregate, and
every released value — lives in a sentinel band ([7000, 7400]) far
from any legitimate magnitude (epsilons, counts, block geometry,
versions, seconds).  A numeric walk over each surface then proves the
invariant in one assertion per surface:

* ``optimizer.*`` / ``svt.*`` telemetry (and the whole snapshot),
* answer-cache keys (digests + public parameters only),
* durable journal frames, including the zero-ε replay frame,
* SVT wire messages — the noisy threshold is *chosen inside the band*
  and must still never appear in any response.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accounting.journal import journal_path, scan
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.runtime.service import ANALYST, OWNER, GuptService, QueryRequest
from repro.core.range_estimation import TightRange

SENTINEL_LO, SENTINEL_HI = 7000.0, 7400.0
#: Inside the band on purpose: the one SVT parameter that must stay
#: server-side even though the analyst supplied it (its noisy version
#: is the secret the whole mechanism leans on).
THRESHOLD = 7100.0
NUM_RECORDS = 2_000
EPSILON = 0.5
QUERY_SEED = 7


def numeric_leaves(payload) -> list[float]:
    """Every number reachable in a payload, labels included."""
    if isinstance(payload, bool):
        return []
    if isinstance(payload, (int, float)):
        return [float(payload)]
    if isinstance(payload, str):
        try:
            return [float(payload)]
        except ValueError:
            return []
    if isinstance(payload, dict):
        return [v for item in payload.items() for x in item for v in numeric_leaves(x)]
    if isinstance(payload, (list, tuple)):
        return [v for item in payload for v in numeric_leaves(item)]
    return []


def in_band(leaves) -> list[float]:
    return [v for v in leaves if SENTINEL_LO <= v <= SENTINEL_HI]


def mean_program(block: np.ndarray) -> float:
    return float(np.mean(block))


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def service(registry, tmp_path):
    service = GuptService(
        rng=7,
        scheduler_workers=1,
        metrics=registry,
        answer_cache_size=16,
        state_dir=str(tmp_path),
    )
    try:
        yield service
    finally:
        service.close()


@pytest.fixture
def tokens(service):
    owner = service.enroll(OWNER, "owner").token
    analyst = service.enroll(ANALYST, "analyst").token
    values = np.random.default_rng(12345).uniform(
        SENTINEL_LO + 50.0, SENTINEL_HI - 50.0, size=(NUM_RECORDS, 1)
    )
    service.register_dataset(
        owner, "census",
        DataTable(values, input_ranges=[(SENTINEL_LO, SENTINEL_HI)]),
        20.0,
    )
    return owner, analyst


def _seeded_request(seed=QUERY_SEED) -> QueryRequest:
    return QueryRequest(
        dataset="census",
        program=Mean(),
        range_strategy=TightRange((SENTINEL_LO, SENTINEL_HI)),
        epsilon=EPSILON,
        block_size=50,
        seed=seed,
    )


def _exercise(service, analyst):
    """One cache miss, one replay, one full SVT session."""
    miss = service.result(service.submit(analyst, _seeded_request()))
    hit = service.result(service.submit(analyst, _seeded_request()))
    assert miss.ok and hit.ok and hit.cached
    # block_size=4 → 500 blocks → per-probe noise scale ≈ 13 against a
    # 100-wide margin, so the asserted probe outcomes are robust under
    # server-drawn noise (there is deliberately no analyst seed).
    opened = service.svt_open(
        analyst, "census", threshold=THRESHOLD,
        lower=SENTINEL_LO, upper=SENTINEL_HI,
        epsilon=EPSILON, count=2, block_size=4,
    )
    probes = [
        service.svt_probe(analyst, opened.session_id, mean_program),
        service.svt_probe(
            analyst, opened.session_id,
            # Shifted below the band; clamped back to the lower bound,
            # so this probe lands below the threshold and rolls back.
            mean_program_minus_band,
        ),
    ]
    closed = service.svt_close(analyst, opened.session_id)
    return miss, hit, opened, probes, closed


def mean_program_minus_band(block: np.ndarray) -> float:
    return float(np.mean(block)) - 500.0


class TestTelemetryIsBandFree:
    def test_optimizer_and_svt_metrics_never_carry_data(
        self, service, registry, tokens
    ):
        _, analyst = tokens
        _exercise(service, analyst)
        snapshot = registry.snapshot()
        optimizer_metrics = {
            section: {
                name: value
                for name, value in entries.items()
                if name.startswith(("optimizer.", "svt.", "budget."))
            }
            for section, entries in snapshot.items()
            if isinstance(entries, dict)
        }
        # The layers under test actually reported something...
        reported = [n for s in optimizer_metrics.values() for n in s]
        assert any(n.startswith("optimizer.") for n in reported)
        assert any(n.startswith("svt.") for n in reported)
        # ...and none of it touches the band.
        assert in_band(numeric_leaves(optimizer_metrics)) == []

    def test_whole_snapshot_is_band_free(self, service, registry, tokens):
        _, analyst = tokens
        _exercise(service, analyst)
        assert in_band(numeric_leaves(registry.snapshot())) == []


class TestCacheKeysAreBandFree:
    def test_stored_keys_contain_only_public_identity(self, service, tokens):
        _, analyst = tokens
        _exercise(service, analyst)
        cache = service._runtime.answer_cache
        assert len(cache) >= 1
        for key in list(cache._entries):
            leaves = numeric_leaves(dataclasses.asdict(key))
            assert in_band(leaves) == [], key


class TestJournalIsBandFree:
    def test_all_frames_including_replay(self, service, tokens, tmp_path):
        _, analyst = tokens
        _exercise(service, analyst)
        records = scan(journal_path(str(tmp_path))).records
        kinds = {frame["kind"] for frame in records}
        assert "replay" in kinds    # the zero-ε replay is on the books
        assert "commit" in kinds    # so are the SVT charges
        for frame in records:
            assert in_band(numeric_leaves(frame)) == [], frame


class TestSvtWireIsBandFree:
    def test_no_response_ever_carries_band_values(self, service, tokens):
        _, analyst = tokens
        miss, hit, opened, probes, closed = _exercise(service, analyst)
        for response in (opened, *probes, closed):
            wire = dataclasses.asdict(response)
            leaves = numeric_leaves(wire)
            assert in_band(leaves) == [], wire
            assert THRESHOLD not in leaves

    def test_probe_bits_are_the_only_data_dependent_output(
        self, service, tokens
    ):
        _, analyst = tokens
        *_, probes, _ = _exercise(service, analyst)
        above, below = probes
        assert above.above is True
        assert below.above is False
        # The exact aggregates (~7200 and the clamped lower bound) stay
        # server-side; only the comparison bit crosses the wire.
        wire = dataclasses.asdict(above)
        assert set(wire) == {
            "above", "epsilon_charged", "positives", "probes", "exhausted",
        }
