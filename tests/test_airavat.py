"""Unit tests for the Airavat baseline."""

import numpy as np
import pytest

from repro.baselines.airavat.mapreduce import MapReduceJob, MiniMapReduce
from repro.baselines.airavat.runtime import AiravatRuntime
from repro.exceptions import ComputationError, PrivacyBudgetExhausted


def sum_mapper(row):
    yield ("total", float(row[0]))


@pytest.fixture
def records(rng):
    return rng.uniform(0.0, 10.0, size=(400, 1))


class TestMapReduceJob:
    def test_valid_job(self):
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        assert job.max_pairs_per_record == 1

    def test_empty_keys_rejected(self):
        with pytest.raises(ComputationError):
            MapReduceJob(mapper=sum_mapper, keys=(), value_range=(0, 10))

    def test_bad_range_rejected(self):
        with pytest.raises(ComputationError):
            MapReduceJob(mapper=sum_mapper, keys=("a",), value_range=(10, 0))

    def test_bad_pair_cap_rejected(self):
        with pytest.raises(ComputationError):
            MapReduceJob(
                mapper=sum_mapper, keys=("a",), value_range=(0, 1),
                max_pairs_per_record=0,
            )


class TestMiniMapReduce:
    def test_groups_by_key(self, records):
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        grouped = MiniMapReduce().map_and_group(job, records)
        assert len(grouped["total"]) == 400

    def test_values_clamped_to_declared_range(self):
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 5))
        grouped = MiniMapReduce().map_and_group(job, np.array([[100.0]]))
        assert grouped["total"] == [5.0]

    def test_crashing_mapper_record_skipped(self, records):
        def fragile(row):
            if row[0] > 5.0:
                raise RuntimeError
            yield ("total", row[0])

        job = MapReduceJob(mapper=fragile, keys=("total",), value_range=(0, 10))
        grouped = MiniMapReduce().map_and_group(job, records)
        assert len(grouped["total"]) == int((records[:, 0] <= 5.0).sum())

    def test_pair_cap_enforced(self):
        def chatty(row):
            for i in range(10):
                yield ("k", float(i))

        job = MapReduceJob(
            mapper=chatty, keys=("k",), value_range=(0, 10), max_pairs_per_record=2
        )
        grouped = MiniMapReduce().map_and_group(job, np.array([[1.0]]))
        assert len(grouped["k"]) == 2

    def test_undeclared_keys_dropped(self):
        def rogue(row):
            yield ("undeclared", 1.0)

        job = MapReduceJob(mapper=rogue, keys=("expected",), value_range=(0, 1))
        grouped = MiniMapReduce().map_and_group(job, np.array([[1.0]]))
        assert grouped["expected"] == []


class TestAiravatRuntime:
    def test_noisy_sum_near_truth(self, records):
        runtime = AiravatRuntime(total_budget=100.0, rng=0)
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        result = runtime.run(job, records, epsilon=50.0)
        assert result.sums["total"] == pytest.approx(records.sum(), rel=0.02)

    def test_noisy_count_near_truth(self, records):
        runtime = AiravatRuntime(total_budget=100.0, rng=0)
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        result = runtime.run(job, records, epsilon=50.0, reduce_with="count")
        assert result.counts["total"] == pytest.approx(400, abs=2)

    def test_platform_holds_the_budget(self, records):
        runtime = AiravatRuntime(total_budget=1.0, rng=0)
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        runtime.run(job, records, epsilon=1.0)
        with pytest.raises(PrivacyBudgetExhausted):
            runtime.run(job, records, epsilon=0.5)

    def test_unknown_reducer_rejected(self, records):
        runtime = AiravatRuntime(total_budget=1.0, rng=0)
        job = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        with pytest.raises(ValueError):
            runtime.run(job, records, epsilon=0.5, reduce_with="median")

    def test_noise_scales_with_multiplicity(self, records):
        # A record touching 2 keys halves the per-key epsilon; verify the
        # noise grows accordingly.
        def two_keys(row):
            yield ("a", float(row[0]))
            yield ("b", float(row[0]))

        single = MapReduceJob(mapper=sum_mapper, keys=("total",), value_range=(0, 10))
        double = MapReduceJob(
            mapper=two_keys, keys=("a", "b"), value_range=(0, 10),
            max_pairs_per_record=2,
        )
        rng = np.random.default_rng(0)

        def spread(job, key):
            runtime = AiravatRuntime(total_budget=10_000.0, rng=rng)
            truth = records.sum()
            draws = [
                runtime.run(job, records, epsilon=1.0).sums[key] - truth
                for _ in range(200)
            ]
            return np.std(draws)

        assert spread(double, "a") > 1.5 * spread(single, "total")
