"""Unit tests for accuracy-goal -> epsilon translation (§5.1)."""

import numpy as np
import pytest

from repro.core.aging import AgedData
from repro.core.budget_estimation import AccuracyGoal, estimate_epsilon
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import AccuracyGoalInfeasible, GuptError


@pytest.fixture
def aged(rng):
    return AgedData(DataTable(rng.normal(40, 10, size=3000).clip(0, 150)), rng=0)


class TestAccuracyGoal:
    def test_permissible_std_formula(self):
        goal = AccuracyGoal(rho=0.9, delta=0.1)
        sigma = goal.permissible_std(reference_output=38.58)
        assert sigma == pytest.approx(np.sqrt(0.1) * 0.1 * 38.58)

    def test_stricter_rho_means_smaller_sigma(self):
        loose = AccuracyGoal(rho=0.8, delta=0.1)
        strict = AccuracyGoal(rho=0.99, delta=0.1)
        assert strict.permissible_std(100.0) < loose.permissible_std(100.0)

    def test_stricter_delta_means_smaller_sigma(self):
        loose = AccuracyGoal(rho=0.9, delta=0.5)
        strict = AccuracyGoal(rho=0.9, delta=0.01)
        assert strict.permissible_std(100.0) < loose.permissible_std(100.0)

    @pytest.mark.parametrize("rho", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_rho(self, rho):
        with pytest.raises(GuptError):
            AccuracyGoal(rho=rho, delta=0.1)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_invalid_delta(self, delta):
        with pytest.raises(GuptError):
            AccuracyGoal(rho=0.9, delta=delta)


class TestEstimateEpsilon:
    def test_solves_equation3(self, aged):
        goal = AccuracyGoal(rho=0.9, delta=0.1)
        estimate = estimate_epsilon(
            goal, aged, Mean(), live_records=30_000, sensitivity=150.0, block_size=75
        )
        # Check eps satisfies C + 2 s^2/(eps^2 n^(2 alpha)) = sigma^2.
        n_alpha = 30_000**estimate.alpha
        noise_var = 2 * 150.0**2 / (estimate.epsilon**2 * n_alpha**2)
        assert estimate.estimation_variance + noise_var == pytest.approx(
            estimate.sigma**2, rel=1e-6
        )

    def test_stricter_goal_needs_more_epsilon(self, aged):
        loose = estimate_epsilon(
            AccuracyGoal(rho=0.8, delta=0.2), aged, Mean(),
            live_records=30_000, sensitivity=150.0, block_size=75,
        )
        strict = estimate_epsilon(
            AccuracyGoal(rho=0.95, delta=0.05), aged, Mean(),
            live_records=30_000, sensitivity=150.0, block_size=75,
        )
        assert strict.epsilon > loose.epsilon

    def test_smaller_blocks_need_less_epsilon(self, aged):
        goal = AccuracyGoal(rho=0.9, delta=0.1)
        small = estimate_epsilon(
            goal, aged, Mean(), live_records=30_000, sensitivity=150.0, block_size=30
        )
        large = estimate_epsilon(
            goal, aged, Mean(), live_records=30_000, sensitivity=150.0, block_size=300
        )
        assert small.epsilon < large.epsilon

    def test_derived_epsilon_meets_goal_empirically(self, aged, rng):
        # The end-to-end promise: run the query with the derived epsilon
        # and check the accuracy goal holds on fresh live data.
        from repro.core.sample_aggregate import SampleAggregateEngine

        goal = AccuracyGoal(rho=0.9, delta=0.1)
        live = rng.normal(40, 10, size=(30_000, 1)).clip(0, 150)
        estimate = estimate_epsilon(
            goal, aged, Mean(), live_records=30_000, sensitivity=150.0, block_size=75
        )
        engine = SampleAggregateEngine()
        truth = live.mean()
        hits = 0
        for _ in range(50):
            value = engine.run(
                live, Mean(), epsilon=estimate.epsilon,
                output_ranges=(0.0, 150.0), block_size=75, rng=rng,
            ).scalar()
            if abs(value - truth) / truth <= (1 - goal.rho):
                hits += 1
        assert hits >= 45  # goal asks for >= 90% of 50 = 45

    def test_infeasible_goal_raises(self, rng):
        # A tiny aged slice at a large block size -> huge estimation
        # variance -> no epsilon can deliver 99.9% accuracy.
        noisy = AgedData(DataTable(rng.lognormal(3, 2, size=60).clip(0, 150)), rng=0)
        goal = AccuracyGoal(rho=0.999, delta=0.001)
        with pytest.raises(AccuracyGoalInfeasible):
            estimate_epsilon(
                goal, noisy, Mean(), live_records=30_000,
                sensitivity=150.0, block_size=2,
            )

    def test_zero_reference_output_raises(self, rng):
        centered = AgedData(DataTable(rng.normal(0, 1, size=500)), rng=0)
        # Mean ~ 0 -> permissible sigma ~ 0 -> infeasible.
        zeroed = DataTable(np.concatenate([[-1.0, 1.0], np.zeros(100)]))
        aged_zero = AgedData(zeroed, rng=0)
        goal = AccuracyGoal(rho=0.9, delta=0.1)
        with pytest.raises(AccuracyGoalInfeasible):
            estimate_epsilon(
                goal, aged_zero, Mean(), live_records=1000,
                sensitivity=2.0, block_size=102,
            )

    def test_invalid_block_size_rejected(self, aged):
        goal = AccuracyGoal(rho=0.9, delta=0.1)
        with pytest.raises(GuptError):
            estimate_epsilon(
                goal, aged, Mean(), live_records=1000,
                sensitivity=1.0, block_size=10_000,
            )

    def test_invalid_sensitivity_rejected(self, aged):
        goal = AccuracyGoal(rho=0.9, delta=0.1)
        with pytest.raises(GuptError):
            estimate_epsilon(
                goal, aged, Mean(), live_records=1000,
                sensitivity=0.0, block_size=10,
            )
