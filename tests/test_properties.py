"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.budget import PrivacyBudget
from repro.core.aggregation import NoisyAverageAggregator, OutputRange
from repro.core.blocks import BlockPlan
from repro.core.budget_distribution import BudgetDistributor, QuerySpec
from repro.exceptions import PrivacyBudgetExhausted
from repro.mechanisms.composition import split_proportionally
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.percentile import dp_percentile

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestBlockPlanProperties:
    @given(
        n=st.integers(min_value=1, max_value=300),
        beta=st.integers(min_value=1, max_value=300),
        gamma=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, n, beta, gamma, seed):
        if beta > n:
            return
        plan = BlockPlan.draw(n, block_size=beta, resampling_factor=gamma, rng=seed)
        # Every block exactly full.
        assert all(len(block) == beta for block in plan.blocks)
        # One record appears in at most gamma blocks (the sensitivity bound).
        assert plan.record_multiplicity().max() <= gamma
        # Block count is gamma * floor(n/beta).
        assert plan.num_blocks == gamma * (n // beta)
        # All indices valid.
        for block in plan.blocks:
            assert block.min() >= 0 and block.max() < n

    @given(
        n=st.integers(min_value=2, max_value=400),
        beta=st.integers(min_value=1, max_value=57),
        gamma=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_multiplicity_when_block_size_does_not_divide_n(
        self, n, beta, gamma, seed
    ):
        """The §4.2 remainder-dropping invariants when beta does not divide n.

        Each round keeps exactly ``floor(n/beta) * beta`` records (the
        per-round remainder is dropped), so total coverage is pinned
        even though *which* records each round drops varies.
        """
        if beta > n:
            return
        plan = BlockPlan.draw(n, block_size=beta, resampling_factor=gamma, rng=seed)
        multiplicity = plan.record_multiplicity()
        assert multiplicity.shape == (n,)
        # The sensitivity bound gamma holds for every record, full
        # rounds or not.
        assert multiplicity.max() <= gamma
        assert multiplicity.min() >= 0
        # Coverage is exactly gamma rounds of floor(n/beta) full bins.
        assert multiplicity.sum() == gamma * (n // beta) * beta
        # When beta divides n no record is ever dropped.
        if n % beta == 0:
            assert np.array_equal(multiplicity, np.full(n, gamma))

    @given(
        n=st.integers(min_value=2, max_value=300),
        beta=st.integers(min_value=1, max_value=50),
        gamma=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_stacked_materialization_matches_per_block_slices(
        self, n, beta, gamma, seed
    ):
        """plan.stack rows are exactly the per-index gathers (bit-equal)."""
        if beta > n:
            return
        plan = BlockPlan.draw(n, block_size=beta, resampling_factor=gamma, rng=seed)
        values = np.random.default_rng(seed).normal(size=(n, 2))
        stacked = plan.stack(values)
        assert stacked.shape == (plan.num_blocks, beta, 2)
        for row, idx in zip(stacked, plan.blocks):
            assert np.array_equal(row, values[idx])


class TestAggregationProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=40
        ),
        lo=st.floats(min_value=-100, max_value=0),
        hi=st.floats(min_value=0.001, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_release_bounded_by_range_plus_noise(self, values, lo, hi, seed):
        agg = NoisyAverageAggregator(OutputRange(lo, hi), epsilon=1.0)
        release = agg.aggregate(np.array(values), rng=seed)
        scale = agg.noise_scale(0, len(values), 1)
        # Clamped mean lies in [lo, hi]; noise is the only exceedance.
        noise = release.scalar() - np.clip(np.array(values), lo, hi).mean()
        assert abs(noise) < 60 * scale  # P(|Lap| > 60b) ~ 1e-26

    @given(
        lo=st.floats(min_value=-50, max_value=50),
        width=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_range_clamp_idempotent(self, lo, width):
        r = OutputRange(lo, lo + width)
        data = np.linspace(lo - 10, lo + width + 10, 20)
        once = r.clamp(data)
        assert np.array_equal(r.clamp(once), once)
        assert once.min() >= r.lo and once.max() <= r.hi


class TestBudgetProperties:
    @given(
        total=st.floats(min_value=0.1, max_value=100),
        charges=st.lists(st.floats(min_value=0.001, max_value=10), max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_overspends(self, total, charges):
        budget = PrivacyBudget(total)
        for amount in charges:
            try:
                budget.charge(amount)
            except PrivacyBudgetExhausted:
                pass
        assert budget.spent <= total + 1e-6
        assert budget.remaining >= 0.0

    @given(
        epsilon=st.floats(min_value=0.01, max_value=100),
        weights=st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_proportional_split_conserves_budget(self, epsilon, weights):
        shares = split_proportionally(epsilon, weights)
        assert sum(shares) == pytest.approx(epsilon, rel=1e-9)
        assert all(s >= 0 for s in shares)


class TestDistributorProperties:
    @given(
        total=st.floats(min_value=0.1, max_value=10),
        widths=st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_equal_noise_and_conservation(self, total, widths):
        specs = [
            QuerySpec(name=f"q{i}", output_width=w, num_blocks=10)
            for i, w in enumerate(widths)
        ]
        allocations = BudgetDistributor(total).allocate(specs)
        assert sum(a.epsilon for a in allocations) == pytest.approx(total, rel=1e-9)
        stds = [a.noise_std for a in allocations]
        assert max(stds) == pytest.approx(min(stds), rel=1e-6)


class TestExponentialMechanismProperties:
    @given(
        utilities=st.lists(
            st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=20
        ),
        epsilon=st.floats(min_value=0.01, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_distribution_valid_and_monotone(self, utilities, epsilon):
        mech = ExponentialMechanism(epsilon=epsilon)
        probs = mech.probabilities(utilities)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)
        # Higher utility never gets lower probability.
        order = np.argsort(utilities)
        sorted_probs = probs[order]
        assert np.all(np.diff(sorted_probs) >= -1e-12)


class TestPercentileProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=50
        ),
        pct=st.floats(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_within_bounds(self, values, pct, seed):
        out = dp_percentile(values, pct, epsilon=1.0, lo=-200, hi=200, rng=seed)
        assert -200 <= out <= 200
