"""Unit tests for DataTable."""

import numpy as np
import pytest

from repro.datasets.table import DataTable
from repro.exceptions import DatasetError, InvalidRange


class TestConstruction:
    def test_1d_promoted_to_column(self):
        table = DataTable([1.0, 2.0, 3.0])
        assert table.values.shape == (3, 1)

    def test_2d_preserved(self):
        table = DataTable([[1.0, 2.0], [3.0, 4.0]])
        assert table.num_records == 2
        assert table.num_dimensions == 2

    def test_values_are_read_only(self):
        table = DataTable([[1.0, 2.0]])
        with pytest.raises(ValueError):
            table.values[0, 0] = 99.0

    def test_source_array_is_copied(self):
        source = np.array([[1.0, 2.0]])
        table = DataTable(source)
        source[0, 0] = 99.0
        assert table.values[0, 0] == 1.0

    def test_default_column_names(self):
        table = DataTable(np.zeros((2, 3)))
        assert table.column_names == ("dim0", "dim1", "dim2")

    def test_custom_column_names(self):
        table = DataTable(np.zeros((2, 2)), column_names=["x", "y"])
        assert table.column_names == ("x", "y")

    def test_wrong_name_count_rejected(self):
        with pytest.raises(DatasetError):
            DataTable(np.zeros((2, 2)), column_names=["only-one"])

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            DataTable(np.empty((0, 2)))

    def test_3d_rejected(self):
        with pytest.raises(DatasetError):
            DataTable(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(DatasetError):
            DataTable([1.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(DatasetError):
            DataTable([1.0, float("inf")])

    def test_input_ranges_validated(self):
        with pytest.raises(InvalidRange):
            DataTable([1.0], input_ranges=[(5.0, 1.0)])

    def test_wrong_range_count_rejected(self):
        with pytest.raises(DatasetError):
            DataTable(np.zeros((2, 2)), input_ranges=[(0.0, 1.0)])

    def test_none_ranges_allowed(self):
        table = DataTable(np.zeros((2, 2)), input_ranges=[None, (0.0, 1.0)])
        assert table.input_ranges[0] is None
        assert table.input_ranges[1] == (0.0, 1.0)

    def test_len_and_iter(self):
        table = DataTable([[1.0], [2.0]])
        assert len(table) == 2
        assert [row[0] for row in table] == [1.0, 2.0]


class TestColumnAccess:
    def test_column_by_index(self):
        table = DataTable([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(table.column(1), [2.0, 4.0])

    def test_column_by_name(self):
        table = DataTable([[1.0, 2.0]], column_names=["x", "y"])
        assert table.column("y")[0] == 2.0

    def test_negative_index(self):
        table = DataTable([[1.0, 2.0]])
        assert table.column(-1)[0] == 2.0

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            DataTable([[1.0]]).column("missing")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(DatasetError):
            DataTable([[1.0]]).column(5)

    def test_select_columns(self):
        table = DataTable([[1.0, 2.0, 3.0]], column_names=["a", "b", "c"],
                          input_ranges=[(0, 1), (0, 2), (0, 3)])
        sub = table.select_columns(["c", "a"])
        assert sub.column_names == ("c", "a")
        assert sub.values[0, 0] == 3.0
        assert sub.input_ranges == ((0.0, 3.0), (0.0, 1.0))


class TestDerivation:
    def test_take_preserves_metadata(self):
        table = DataTable([[1.0], [2.0], [3.0]], column_names=["v"],
                          input_ranges=[(0, 10)])
        sub = table.take([2, 0])
        assert sub.values[:, 0].tolist() == [3.0, 1.0]
        assert sub.column_names == ("v",)
        assert sub.input_ranges == ((0.0, 10.0),)

    def test_shuffled_is_permutation(self):
        table = DataTable(np.arange(50.0))
        shuffled = table.shuffled(rng=0)
        assert sorted(shuffled.values.ravel()) == sorted(table.values.ravel())
        assert not np.array_equal(shuffled.values, table.values)

    def test_split_sizes(self):
        table = DataTable(np.arange(100.0))
        first, second = table.split(0.25, rng=0)
        assert first.num_records == 25
        assert second.num_records == 75

    def test_split_is_partition(self):
        table = DataTable(np.arange(100.0))
        first, second = table.split(0.4, rng=1)
        combined = sorted(
            first.values.ravel().tolist() + second.values.ravel().tolist()
        )
        assert combined == list(range(100))

    def test_split_never_empty(self):
        table = DataTable(np.arange(3.0))
        first, second = table.split(0.01, rng=0)
        assert first.num_records >= 1
        assert second.num_records >= 1

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -1.0])
    def test_invalid_split_rejected(self, fraction):
        with pytest.raises(ValueError):
            DataTable(np.arange(10.0)).split(fraction)

    def test_clamp(self):
        table = DataTable([[-5.0, 5.0], [0.0, 0.0]])
        clamped = table.clamp([(-1.0, 1.0), (-1.0, 1.0)])
        assert clamped.values[0].tolist() == [-1.0, 1.0]

    def test_clamp_wrong_count_rejected(self):
        with pytest.raises(DatasetError):
            DataTable([[1.0, 2.0]]).clamp([(0.0, 1.0)])

    def test_clamp_invalid_range_rejected(self):
        with pytest.raises(InvalidRange):
            DataTable([[1.0]]).clamp([(5.0, 0.0)])

    def test_observed_ranges(self):
        table = DataTable([[1.0, -2.0], [3.0, 4.0]])
        assert table.observed_ranges() == [(1.0, 3.0), (-2.0, 4.0)]
