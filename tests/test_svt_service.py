"""SVT interactive sessions through the service and the HTTP tier.

The service exposes exactly one sparse-vector implementation — the
correct one — with pay-as-you-go budget accounting: the threshold
share ε₁ is charged when the session opens, each positive answer
commits ε₂/c through the two-phase reservation path, and negative
answers roll their reservation back (free, as the SVT analysis
allows).  The HTTP tier carries only the public session terms over the
wire; the noisy threshold and the exact per-probe aggregates never
leave the platform.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exceptions import (
    InvalidRange,
    PrivacyBudgetExhausted,
    SvtError,
    SvtSessionExhausted,
    UnknownSvtSession,
)
from repro.datasets.table import DataTable
from repro.optimizer.svt import SparseVector
from repro.runtime.service import ANALYST, OWNER, GuptService
from repro.server.client import GuptClient, ServerError
from repro.server.http import GuptHttpServer

NUM_RECORDS = 1_000
MEAN_VALUE = 0.6


def mean_program(block: np.ndarray) -> float:
    return float(np.mean(block))


@pytest.fixture
def service():
    service = GuptService(rng=7, scheduler_workers=1)
    try:
        yield service
    finally:
        service.close()


@pytest.fixture
def tokens(service):
    owner = service.enroll(OWNER, "owner").token
    analyst = service.enroll(ANALYST, "analyst").token
    values = np.full((NUM_RECORDS, 1), MEAN_VALUE)
    service.register_dataset(owner, "d", DataTable(values), 5.0)
    return owner, analyst


class TestSessionLifecycle:
    def test_open_charges_threshold_share_only(self, service, tokens):
        _, analyst = tokens
        registered = service._datasets.get("d")
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5, count=2,
        )
        assert opened.epsilon_charged == pytest.approx(0.25)
        assert opened.epsilon_per_positive == pytest.approx(0.125)
        assert registered.budget.spent == pytest.approx(0.25)

    def test_positive_commits_negative_rolls_back(self, service, tokens):
        _, analyst = tokens
        registered = service._datasets.get("d")
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5, count=2,
        )
        above = service.svt_probe(analyst, opened.session_id, mean_program)
        assert above.above  # mean 0.6 sits far above threshold 0.3
        assert above.epsilon_charged == pytest.approx(0.125)
        assert registered.budget.spent == pytest.approx(0.375)

        below = service.svt_probe(
            analyst, opened.session_id,
            lambda block: float(np.mean(block)) - 10.0,
        )
        assert not below.above
        assert below.epsilon_charged == 0.0
        assert registered.budget.spent == pytest.approx(0.375)
        # The rollback shows in the ledger trail as reserve/rollback,
        # never as a committed spend.
        committed = [e.epsilon for e in registered.ledger]
        assert sum(committed) == pytest.approx(0.375)

    def test_exhaustion_is_loud(self, service, tokens):
        _, analyst = tokens
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5, count=1,
        )
        first = service.svt_probe(analyst, opened.session_id, mean_program)
        assert first.above and first.exhausted
        with pytest.raises(SvtSessionExhausted):
            service.svt_probe(analyst, opened.session_id, mean_program)

    def test_close_keeps_spent_budget(self, service, tokens):
        _, analyst = tokens
        registered = service._datasets.get("d")
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5, count=2,
        )
        service.svt_probe(analyst, opened.session_id, mean_program)
        closed = service.svt_close(analyst, opened.session_id)
        assert closed.closed
        assert closed.epsilon_charged == pytest.approx(0.375)
        assert registered.budget.spent == pytest.approx(0.375)
        with pytest.raises(UnknownSvtSession):
            service.svt_probe(analyst, opened.session_id, mean_program)

    def test_session_is_exactly_the_shipped_variant(self, service, tokens):
        _, analyst = tokens
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5,
        )
        session = service._svt_sessions[opened.session_id]
        assert type(session.svt) is SparseVector

    def test_open_rejects_analyst_seed(self, service, tokens):
        # The SVT analysis charges nothing for negative answers only
        # because the noisy threshold and per-probe noise are secret.
        # An analyst-chosen seed would make both computable, turning
        # every free negative into an exact comparison on the raw
        # aggregate — so there is no seed parameter at all.
        _, analyst = tokens
        with pytest.raises(TypeError):
            service.svt_open(
                analyst, "d", threshold=0.3, lower=0.0, upper=1.0,
                epsilon=0.5, seed=11,
            )

    def test_transcripts_reproducible_from_platform_seed_only(self, tokens):
        # Reproducibility (for operators, e.g. replaying an incident)
        # comes from the *platform's* seed, never from the analyst:
        # two services built on the same seed replay identical session
        # transcripts, with no analyst-visible knob involved.
        def transcript():
            service = GuptService(rng=7, scheduler_workers=1)
            try:
                owner = service.enroll(OWNER, "owner").token
                analyst = service.enroll(ANALYST, "analyst").token
                values = np.full((NUM_RECORDS, 1), MEAN_VALUE)
                service.register_dataset(owner, "d", DataTable(values), 5.0)
                opened = service.svt_open(
                    analyst, "d", threshold=0.55, lower=0.0, upper=1.0,
                    epsilon=0.5, count=5,
                )
                bits = [
                    service.svt_probe(
                        analyst, opened.session_id, mean_program
                    ).above
                    for _ in range(3)
                ]
                service.svt_close(analyst, opened.session_id)
                return bits
            finally:
                service.close()

        assert transcript() == transcript()


class TestRefusals:
    def test_foreign_session_is_indistinguishable_from_unknown(
        self, service, tokens
    ):
        _, analyst = tokens
        other = service.enroll(ANALYST, "other").token
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5,
        )
        with pytest.raises(UnknownSvtSession) as foreign:
            service.svt_probe(other, opened.session_id, mean_program)
        with pytest.raises(UnknownSvtSession) as unknown:
            service.svt_probe(analyst, "svt-0-deadbeef", mean_program)
        assert type(foreign.value) is type(unknown.value)

    def test_open_refused_when_budget_cannot_cover_threshold(
        self, service, tokens
    ):
        owner, analyst = tokens
        values = np.full((NUM_RECORDS, 1), MEAN_VALUE)
        service.register_dataset(owner, "tiny", DataTable(values), 0.1)
        registered = service._datasets.get("tiny")
        with pytest.raises(PrivacyBudgetExhausted):
            service.svt_open(
                analyst, "tiny", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
                epsilon=1.0,
            )
        assert registered.budget.spent == 0.0
        assert not service._svt_sessions

    def test_invalid_range_and_params(self, service, tokens):
        _, analyst = tokens
        with pytest.raises(InvalidRange):
            service.svt_open(
                analyst, "d", threshold=0.5, lower=1.0, upper=0.0,
                epsilon=0.5,
            )
        with pytest.raises(SvtError):
            service.svt_open(
                analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
                epsilon=0.5, count=0,
            )
        registered = service._datasets.get("d")
        assert registered.budget.spent == 0.0

    def test_reregistration_invalidates_session(self, service, tokens):
        owner, analyst = tokens
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5,
        )
        service._datasets.unregister("d")
        values = np.full((NUM_RECORDS, 1), MEAN_VALUE)
        service._datasets.register("d", DataTable(values), total_budget=5.0)
        with pytest.raises(SvtError):
            service.svt_probe(analyst, opened.session_id, mean_program)

    def test_session_cap(self, tokens):
        service = GuptService(rng=7, scheduler_workers=1, max_svt_sessions=1)
        try:
            owner = service.enroll(OWNER).token
            analyst = service.enroll(ANALYST).token
            values = np.full((NUM_RECORDS, 1), MEAN_VALUE)
            service.register_dataset(owner, "d", DataTable(values), 5.0)
            service.svt_open(
                analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
                epsilon=0.5,
            )
            with pytest.raises(SvtError):
                service.svt_open(
                    analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
                    epsilon=0.5,
                )
        finally:
            service.close()

    def test_session_cap_holds_under_concurrent_opens(self):
        # The cap is enforced under the lock at insertion time, so a
        # stampede of concurrent opens can never push the session table
        # past the cap — and every refused open rolls its threshold
        # hold back, so exactly the admitted sessions are charged.
        import threading as _threading

        cap = 2
        service = GuptService(
            rng=7, scheduler_workers=1, max_svt_sessions=cap
        )
        try:
            owner = service.enroll(OWNER).token
            analyst = service.enroll(ANALYST).token
            values = np.full((NUM_RECORDS, 1), MEAN_VALUE)
            service.register_dataset(owner, "d", DataTable(values), 100.0)
            registered = service._datasets.get("d")
            outcomes = []
            barrier = _threading.Barrier(8)

            def open_one():
                barrier.wait()
                try:
                    outcomes.append(service.svt_open(
                        analyst, "d", threshold=0.3, lower=0.0,
                        upper=1.0, block_size=2, epsilon=0.5,
                    ))
                except SvtError as exc:
                    outcomes.append(exc)

            threads = [
                _threading.Thread(target=open_one) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            admitted = [o for o in outcomes if not isinstance(o, Exception)]
            assert len(admitted) == cap
            assert len(service._svt_sessions) == cap
            # ε₁ = 0.25 per admitted session; refused opens cost nothing.
            assert registered.budget.spent == pytest.approx(0.25 * cap)
            assert registered.budget.reserved == 0.0
        finally:
            service.close()


class TestWireContract:
    def test_open_response_never_carries_the_threshold(self, service, tokens):
        _, analyst = tokens
        opened = service.svt_open(
            analyst, "d", threshold=0.77, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5,
        )
        wire = dataclasses.asdict(opened)
        assert set(wire) == {
            "session_id", "dataset", "epsilon_charged",
            "epsilon_per_positive", "count",
        }
        assert 0.77 not in wire.values()

    def test_probe_response_is_bits_and_accounting_only(
        self, service, tokens
    ):
        _, analyst = tokens
        opened = service.svt_open(
            analyst, "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5,
        )
        answered = service.svt_probe(analyst, opened.session_id, mean_program)
        wire = dataclasses.asdict(answered)
        assert set(wire) == {
            "above", "epsilon_charged", "positives", "probes", "exhausted",
        }
        # The exact aggregate (0.6, clamped block mean) must not appear.
        assert MEAN_VALUE not in wire.values()


class TestHttpTier:
    @pytest.fixture
    def http_stack(self):
        service = GuptService(rng=7, scheduler_workers=1)
        server = GuptHttpServer(
            service, host="127.0.0.1", port=0, admin_token="adm"
        )
        server.start()
        host, port = server.address
        client = GuptClient(host, port)
        try:
            owner = client.enroll("owner", admin_token="adm")
            analyst = client.enroll("analyst", admin_token="adm")
            client.token = owner
            client.register_dataset("d", [[MEAN_VALUE]] * NUM_RECORDS, 5.0)
            client.token = analyst
            yield client
        finally:
            client.close()
            server.stop()
            service.close()

    def test_full_session_over_http(self, http_stack):
        client = http_stack
        opened = client.svt_open(
            "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5, count=2,
        )
        assert opened["epsilon_charged"] == pytest.approx(0.25)
        answered = client.svt_probe(
            opened["session_id"], {"name": "mean", "column": 0}
        )
        assert answered["above"] is True
        assert answered["epsilon_charged"] == pytest.approx(0.125)
        closed = client.svt_close(opened["session_id"])
        assert closed["closed"] is True
        assert closed["epsilon_charged"] == pytest.approx(0.375)

    def test_exhausted_session_maps_to_409(self, http_stack):
        client = http_stack
        opened = client.svt_open(
            "d", threshold=0.3, lower=0.0, upper=1.0, block_size=2,
            epsilon=0.5, count=1,
        )
        client.svt_probe(opened["session_id"], {"name": "mean"})
        with pytest.raises(ServerError) as refusal:
            client.svt_probe(opened["session_id"], {"name": "mean"})
        assert refusal.value.status == 409
        assert refusal.value.code == "svt_exhausted"

    def test_unknown_session_maps_to_404(self, http_stack):
        with pytest.raises(ServerError) as refusal:
            http_stack.svt_probe("svt-9-cafebabe", {"name": "mean"})
        assert refusal.value.status == 404
        assert refusal.value.code == "unknown_svt_session"

    def test_malformed_open_maps_to_400(self, http_stack):
        with pytest.raises(ServerError) as refusal:
            http_stack._request("POST", "/v1/svt", {"dataset": "d"})
        assert refusal.value.status == 400

    def test_open_with_seed_is_rejected_not_ignored(self, http_stack):
        # Silently dropping the field would let an analyst believe the
        # noise is known to them; the server must refuse outright.
        with pytest.raises(ServerError) as refusal:
            http_stack._request(
                "POST", "/v1/svt",
                {
                    "dataset": "d", "threshold": 0.3, "lower": 0.0,
                    "upper": 1.0, "epsilon": 0.5, "seed": 11,
                },
            )
        assert refusal.value.status == 400
        assert refusal.value.code == "invalid_request"
        assert "seed" in str(refusal.value)
