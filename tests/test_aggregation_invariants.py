"""Property-style tests for Algorithm 1's aggregation invariants.

Two invariants across randomized shapes, ranges and geometries:

1. with a zero-noise RNG the released value is exactly the clamped
   average, so it always lies inside the declared ``OutputRange``;
2. the Laplace scale matches ``(max - min) * gamma / (l * eps_k)`` where
   ``eps_k`` is the per-dimension share of the noise budget and ``l``
   the number of blocks.
"""

import numpy as np
import pytest

from repro.core.aggregation import NoisyAverageAggregator, OutputRange
from repro.core.sample_aggregate import SampleAggregateEngine


class ZeroNoiseRng(np.random.Generator):
    """A real numpy Generator whose Laplace draws are exactly zero.

    Subclassing keeps ``isinstance(rng, np.random.Generator)`` checks in
    :func:`repro.mechanisms.rng.as_generator` honest while removing the
    perturbation, which exposes the clamp-and-average core.
    """

    def __init__(self):
        super().__init__(np.random.PCG64(0))

    def laplace(self, loc=0.0, scale=1.0, size=None):
        if size is None:
            return 0.0
        return np.zeros(size)


def random_ranges(rng: np.random.Generator, dims: int) -> list[OutputRange]:
    lows = rng.uniform(-50.0, 10.0, size=dims)
    widths = rng.uniform(0.1, 80.0, size=dims)
    return [OutputRange(lo, lo + w) for lo, w in zip(lows, widths)]


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("dims", [1, 2, 5])
def test_zero_noise_release_lies_in_declared_range(seed, dims):
    rng = np.random.default_rng(seed)
    ranges = random_ranges(rng, dims)
    num_blocks = int(rng.integers(1, 40))
    # Outputs deliberately overshoot the ranges so clamping has work to do.
    outputs = rng.uniform(-200.0, 200.0, size=(num_blocks, dims))

    aggregator = NoisyAverageAggregator(ranges, epsilon=float(rng.uniform(0.1, 5.0)))
    release = aggregator.aggregate(outputs, rng=ZeroNoiseRng())

    for d, bounds in enumerate(ranges):
        assert bounds.lo <= release.value[d] <= bounds.hi
        clamped_mean = np.clip(outputs[:, d], bounds.lo, bounds.hi).mean()
        assert release.value[d] == pytest.approx(clamped_mean)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("dims", [1, 3])
@pytest.mark.parametrize("gamma", [1, 2, 4])
def test_noise_scale_matches_algorithm1_formula(seed, dims, gamma):
    rng = np.random.default_rng(100 + seed)
    ranges = random_ranges(rng, dims)
    epsilon = float(rng.uniform(0.05, 4.0))
    num_blocks = int(rng.integers(1, 60))
    outputs = rng.normal(0.0, 10.0, size=(num_blocks, dims))

    aggregator = NoisyAverageAggregator(ranges, epsilon)
    release = aggregator.aggregate(outputs, blocks_per_record=gamma, rng=seed)

    eps_k = epsilon / dims
    for d, bounds in enumerate(ranges):
        expected = bounds.width * gamma / (num_blocks * eps_k)
        assert release.noise_scales[d] == pytest.approx(expected)


@pytest.mark.parametrize("seed", range(5))
def test_end_to_end_engine_run_stays_in_range_with_zero_noise(seed):
    """The full sample-aggregate pipeline obeys the range invariant."""
    rng = np.random.default_rng(200 + seed)
    lo, hi = sorted(rng.uniform(-20.0, 20.0, size=2))
    if hi - lo < 1e-6:
        hi = lo + 1.0
    values = rng.normal(0.0, 30.0, size=int(rng.integers(50, 400)))

    engine = SampleAggregateEngine()
    result = engine.run(
        values,
        program=lambda block: float(np.mean(block)),
        epsilon=1.0,
        output_ranges=OutputRange(lo, hi),
        rng=ZeroNoiseRng(),
    )
    assert lo <= result.scalar() <= hi
    # And the scale the engine reports matches the formula with gamma=1.
    expected = (hi - lo) / (result.num_blocks * 1.0)
    assert result.noise_scales[0] == pytest.approx(expected)
