"""Unit tests for the multi-query GuptSession."""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import HelperRange, TightRange
from repro.core.session import GuptSession
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean, Variance
from repro.exceptions import GuptError


@pytest.fixture
def runtime(rng):
    manager = DatasetManager()
    ages = rng.normal(40, 10, size=4000).clip(0, 150)
    manager.register("census", DataTable(ages), total_budget=20.0)
    return GuptRuntime(manager, rng=0)


def build_session(runtime, total=2.0):
    session = GuptSession(runtime=runtime, dataset="census", total_epsilon=total)
    session.add("mean", Mean(), TightRange((0.0, 150.0)))
    session.add("variance", Variance(), TightRange((0.0, 150.0**2 / 4)))
    return session


class TestPlan:
    def test_specs_reflect_declared_widths(self, runtime):
        specs = build_session(runtime).plan()
        assert [s.name for s in specs] == ["mean", "variance"]
        assert specs[0].output_width == 150.0
        assert specs[1].output_width == 150.0**2 / 4

    def test_empty_session_rejected(self, runtime):
        session = GuptSession(runtime=runtime, dataset="census", total_epsilon=1.0)
        with pytest.raises(GuptError):
            session.plan()

    def test_helper_strategy_rejected(self, runtime):
        session = GuptSession(runtime=runtime, dataset="census", total_epsilon=1.0)
        session.add("helper", Mean(), HelperRange(lambda r: [r[0]]))
        with pytest.raises(GuptError):
            session.plan()

    def test_duplicate_names_rejected(self, runtime):
        session = GuptSession(runtime=runtime, dataset="census", total_epsilon=1.0)
        session.add("q", Mean(), TightRange((0.0, 150.0)))
        with pytest.raises(GuptError):
            session.add("q", Mean(), TightRange((0.0, 150.0)))


class TestRun:
    def test_runs_all_queries(self, runtime):
        results = build_session(runtime).run()
        assert set(results) == {"mean", "variance"}

    def test_total_budget_spent_exactly(self, runtime):
        build_session(runtime, total=2.0).run()
        spent = runtime.dataset_manager.get("census").budget.spent
        assert spent == pytest.approx(2.0)

    def test_variance_gets_the_lions_share(self, runtime):
        results = build_session(runtime, total=2.0).run()
        # Example 4: the variance query's sensitivity is ~max/4 times the
        # mean's, so it must receive almost the whole budget.
        assert results["variance"].epsilon_total > 30 * results["mean"].epsilon_total

    def test_noise_std_equalized_across_queries(self, runtime):
        results = build_session(runtime, total=2.0).run()
        mean_noise = results["mean"].noise_scales[0]
        variance_noise = results["variance"].noise_scales[0]
        assert mean_noise == pytest.approx(variance_noise, rel=0.01)

    def test_ledger_has_one_entry_per_query(self, runtime):
        build_session(runtime).run()
        ledger = runtime.dataset_manager.get("census").ledger
        assert set(ledger.by_query()) == {"mean", "variance"}

    def test_chaining(self, runtime):
        session = (
            GuptSession(runtime=runtime, dataset="census", total_epsilon=1.0)
            .add("a", Mean(), TightRange((0.0, 150.0)))
            .add("b", Mean(), TightRange((0.0, 150.0)))
        )
        results = session.run()
        assert results["a"].epsilon_total == pytest.approx(0.5)
        assert results["b"].epsilon_total == pytest.approx(0.5)
