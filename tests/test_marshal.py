"""Unit tests for the external-binary program wrapper."""

import sys
import textwrap

import numpy as np
import pytest

from repro.core.sample_aggregate import SampleAggregateEngine
from repro.exceptions import ComputationError
from repro.runtime.marshal import ExternalProgram, block_to_csv, parse_output_vector


@pytest.fixture
def mean_script(tmp_path):
    """A standalone 'binary': reads CSV on stdin, prints the column mean."""
    script = tmp_path / "mean.py"
    script.write_text(textwrap.dedent("""
        import sys
        values = []
        for line in sys.stdin:
            line = line.strip()
            if line:
                values.append(float(line.split(",")[0]))
        print(sum(values) / len(values))
    """))
    return (sys.executable, str(script))


class TestSerialization:
    def test_block_to_csv_roundtrip(self):
        block = np.array([[1.0, 2.5], [3.0, -4.0]])
        text = block_to_csv(block)
        rows = [
            [float(cell) for cell in line.split(",")]
            for line in text.strip().splitlines()
        ]
        assert np.array_equal(np.array(rows), block)

    def test_1d_block_promoted(self):
        assert block_to_csv(np.array([1.0, 2.0])).strip().splitlines() == ["1.0", "2.0"]

    def test_parse_whitespace_and_commas(self):
        assert np.array_equal(
            parse_output_vector("1.0, 2.0 3.0", 3), [1.0, 2.0, 3.0]
        )

    def test_parse_wrong_count_rejected(self):
        with pytest.raises(ComputationError):
            parse_output_vector("1.0 2.0", 3)

    def test_parse_non_numeric_rejected(self):
        with pytest.raises(ComputationError):
            parse_output_vector("hello", 1)

    def test_parse_nan_rejected(self):
        with pytest.raises(ComputationError):
            parse_output_vector("nan", 1)


class TestExternalProgram:
    def test_runs_the_binary(self, mean_script):
        program = ExternalProgram(command=mean_script)
        block = np.linspace(0.0, 10.0, 11).reshape(-1, 1)
        assert program(block)[0] == pytest.approx(5.0)

    def test_nonzero_exit_raises(self, tmp_path):
        script = tmp_path / "fail.py"
        script.write_text("import sys; sys.exit(3)")
        program = ExternalProgram(command=(sys.executable, str(script)))
        with pytest.raises(ComputationError, match="status 3"):
            program(np.array([[1.0]]))

    def test_hang_is_killed(self, tmp_path):
        script = tmp_path / "hang.py"
        script.write_text("import time, sys\nsys.stdin.read()\ntime.sleep(30)")
        program = ExternalProgram(command=(sys.executable, str(script)), timeout=0.5)
        with pytest.raises(ComputationError, match="exceeded"):
            program(np.array([[1.0]]))

    def test_missing_binary_raises(self):
        program = ExternalProgram(command=("/no/such/binary",))
        with pytest.raises(ComputationError, match="cannot execute"):
            program(np.array([[1.0]]))

    def test_garbage_output_raises(self, tmp_path):
        script = tmp_path / "garbage.py"
        script.write_text("import sys; sys.stdin.read(); print('not-a-number')")
        program = ExternalProgram(command=(sys.executable, str(script)))
        with pytest.raises(ComputationError):
            program(np.array([[1.0]]))

    @pytest.mark.parametrize("kwargs", [
        {"command": ()},
        {"command": ("x",), "output_dimension": 0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ComputationError):
            ExternalProgram(**kwargs)


class TestEndToEnd:
    def test_binary_under_sample_and_aggregate(self, mean_script, rng):
        """The paper's headline capability: an unmodified external
        executable runs privately with zero changes."""
        program = ExternalProgram(command=mean_script)
        data = rng.uniform(0.0, 10.0, size=(300, 1))
        engine = SampleAggregateEngine()
        release = engine.run(
            data, program, epsilon=50.0, output_ranges=(0.0, 10.0),
            block_size=50, rng=0,
        )
        assert release.failed_blocks == 0
        assert release.scalar() == pytest.approx(data.mean(), abs=0.5)

    def test_crashing_binary_blocks_fall_back(self, tmp_path, rng):
        script = tmp_path / "flaky.py"
        script.write_text(textwrap.dedent("""
            import sys
            values = [float(l.split(",")[0]) for l in sys.stdin if l.strip()]
            mean = sum(values) / len(values)
            if mean > 5.0:
                sys.exit(1)
            print(mean)
        """))
        program = ExternalProgram(command=(sys.executable, str(script)))
        data = rng.uniform(0.0, 10.0, size=(200, 1))
        engine = SampleAggregateEngine()
        release = engine.run(
            data, program, epsilon=1e9, output_ranges=(0.0, 10.0),
            block_size=20, rng=0,
        )
        # Some blocks crash (mean > 5) and contribute the fallback 5.0;
        # the release is still produced and in-range.
        assert release.failed_blocks > 0
        assert 0.0 <= release.scalar() <= 10.0
