"""Unit tests for the MAC policy model."""

import socket
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import SandboxViolation
from repro.runtime.policy import MACPolicy


class TestPermits:
    def test_scratch_write_allowed(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        assert policy.permits_write(tmp_path / "state.txt")

    def test_nested_scratch_write_allowed(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        assert policy.permits_write(tmp_path / "a" / "b" / "c.txt")

    def test_outside_write_denied(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        assert not policy.permits_write("/etc/passwd")

    def test_sibling_prefix_denied(self, tmp_path):
        # /scratch-evil must not match /scratch via prefix sloppiness.
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        policy = MACPolicy(scratch_dir=scratch)
        assert not policy.permits_write(tmp_path / "scratch-evil" / "f")


class TestEnforcement:
    def test_network_blocked(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path, allow_network=False)
        with policy.enforced():
            with pytest.raises(SandboxViolation):
                socket.socket(socket.AF_INET, socket.SOCK_STREAM)

    def test_network_allowed_when_policy_permits(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path, allow_network=True)
        with policy.enforced():
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.close()

    def test_write_outside_scratch_blocked(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        policy = MACPolicy(scratch_dir=scratch)
        outside = tmp_path / "leak.txt"
        with policy.enforced():
            with pytest.raises(SandboxViolation):
                open(outside, "w")

    def test_write_inside_scratch_allowed(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        with policy.enforced():
            with open(tmp_path / "ok.txt", "w") as fh:
                fh.write("fine")
        assert (tmp_path / "ok.txt").read_text() == "fine"

    def test_reads_always_allowed(self, tmp_path):
        target = tmp_path / "data.txt"
        target.write_text("payload")
        policy = MACPolicy(scratch_dir=tmp_path / "scratch")
        with policy.enforced():
            assert open(target).read() == "payload"

    def test_patching_is_reverted(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        original_socket = socket.socket
        with policy.enforced():
            pass
        assert socket.socket is original_socket

    def test_patching_reverted_after_exception(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        original_open = open
        with pytest.raises(RuntimeError):
            with policy.enforced():
                raise RuntimeError("program crash")
        import builtins
        assert builtins.open is original_open


class TestWipeScratch:
    def test_removes_files_and_dirs(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path)
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "f.txt").write_text("x")
        (tmp_path / "top.txt").write_text("y")
        policy.wipe_scratch()
        assert list(tmp_path.iterdir()) == []

    def test_missing_scratch_is_noop(self, tmp_path):
        policy = MACPolicy(scratch_dir=tmp_path / "never-created")
        policy.wipe_scratch()  # must not raise
