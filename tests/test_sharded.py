"""Sharded execution engine: determinism, combine protocol, self-healing.

The backend's core contract is that sharding is *execution geometry*,
not a statistical change: for a fixed logical shard count ``S`` (a
public plan parameter, like block size) every backend — serial, thread,
pool, vectorized, sharded at any physical worker count ``K`` — releases
bit-for-bit identical values under the same seed.  These tests pin that
matrix, the shard-major combine protocol underneath it, the degrade
paths (timing defense, unpicklable programs, explicit grouped plans),
and kill-and-replace self-healing.
"""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.blocks import (
    draw_shard_local_plan,
    draw_sharded_plan,
    shard_block_counts,
    shard_offsets,
)
from repro.core.gupt import GuptRuntime
from repro.core.plan_cache import BlockPlanCache, PlanKey, slice_stacked_for_shard
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import ComputationError
from repro.observability import MetricsRegistry
from repro.runtime.computation_manager import ComputationManager
from repro.runtime.shard import ShardedExecutionBackend, ShardQuerySpec
from repro.runtime.timing import TimingDefense

SEED = 424242
QUERY_SEED = 7
EPSILON = 0.5
BLOCK_SIZE = 50
NUM_RECORDS = 1_000


def crash_on_negative_mean(block):
    """Kills its host process on shard-0 data (see the self-heal test).

    Module-level so it pickles: a nested def would silently degrade the
    sharded fast path to the in-process chamber — and kill the test run.
    """
    if float(np.mean(block)) < 0:
        import os

        os._exit(13)
    return float(np.mean(block))


crash_on_negative_mean.output_dimension = 1


def _values(num_records: int = NUM_RECORDS) -> np.ndarray:
    return np.random.default_rng(SEED).uniform(0.0, 100.0, size=(num_records, 1))


def _release(
    *,
    backend: str | None = None,
    workers: int | None = None,
    shards: int | None = None,
    nodes=None,
    computation: ComputationManager | None = None,
    metrics: MetricsRegistry | None = None,
    program=None,
    num_records: int = NUM_RECORDS,
):
    """One seeded query through a fresh runtime; the released tuple."""
    manager = DatasetManager()
    manager.register(
        "data", DataTable(_values(num_records), input_ranges=[(0.0, 100.0)]),
        total_budget=100.0,
    )
    if computation is not None:
        runtime = GuptRuntime(
            manager, computation_manager=computation, rng=SEED, metrics=metrics
        )
    else:
        runtime = GuptRuntime(
            manager, rng=SEED, backend=backend, workers=workers,
            shards=shards, nodes=nodes, metrics=metrics,
        )
    try:
        result = runtime.run(
            "data",
            program if program is not None else Mean(),
            TightRange((0.0, 100.0)),
            epsilon=EPSILON,
            block_size=BLOCK_SIZE,
            rng=QUERY_SEED,
        )
    finally:
        runtime.close()
    return tuple(float(v) for v in result.value), result.num_blocks


class TestDeterminismMatrix:
    def test_every_backend_agrees_at_fixed_shards(self):
        """serial/thread/pool/vectorized/sharded/remote: same bits at S=4."""
        releases = {
            "serial": _release(backend="serial", shards=4),
            "thread": _release(backend="thread", workers=2, shards=4),
            "pool": _release(backend="pool", workers=2, shards=4),
            "vectorized": _release(backend="vectorized", shards=4),
            "sharded-K1": _release(backend="sharded", workers=1, shards=4),
            "sharded-K2": _release(backend="sharded", workers=2, shards=4),
            "sharded-K4": _release(backend="sharded", workers=4, shards=4),
            "remote-N1": _release(backend="remote", nodes=1, shards=4),
            "remote-N2": _release(backend="remote", nodes=2, shards=4),
        }
        assert len(set(releases.values())) == 1, releases

    def test_worker_count_never_moves_bits(self):
        """K is deployment geometry: uneven shard/worker splits included."""
        releases = {
            k: _release(backend="sharded", workers=k, shards=6)
            for k in (1, 2, 3, 4, 6)
        }
        assert len(set(releases.values())) == 1, releases

    def test_node_count_never_moves_bits(self):
        """Remote node count N is deployment geometry, exactly like K."""
        releases = {
            n: _release(backend="remote", nodes=n, shards=6)
            for n in (1, 2, 3, 6)
        }
        releases["sharded"] = _release(backend="sharded", workers=2, shards=6)
        assert len(set(releases.values())) == 1, releases

    def test_remote_subprocess_nodes_agree(self):
        """Real node processes over TCP release the same bits as serial."""
        from repro.runtime.remote import RemoteShardBackend

        remote = RemoteShardBackend(
            shards=4, nodes=2, node_spawn="process", heartbeat_interval=None
        )
        try:
            computation = ComputationManager(
                backend="remote", max_workers=2, shards=4, sharded=remote
            )
            over_tcp = _release(computation=computation)
        finally:
            remote.close()
        assert over_tcp == _release(backend="serial", shards=4)

    def test_single_shard_matches_legacy_protocol(self):
        """S=1 is *defined* as the pre-sharding plan protocol."""
        assert _release(backend="serial") == _release(
            backend="sharded", workers=1, shards=1
        )

    def test_shard_count_is_a_public_plan_parameter(self):
        """Changing S redraws the plan — S reaches the released bits."""
        assert _release(backend="serial", shards=2) != _release(
            backend="serial", shards=4
        )

    def test_fast_path_actually_ran(self):
        metrics = MetricsRegistry()
        _release(backend="sharded", workers=2, shards=4, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["shard.queries"] == 1
        assert not any(k.startswith("sharded.fallbacks") for k in counters)


class TestCombineProtocol:
    def test_combined_plan_is_shard_major_concatenation(self):
        combined = draw_sharded_plan(
            NUM_RECORDS, block_size=BLOCK_SIZE, resampling_factor=2,
            plan_seed=99, shards=3,
        )
        offsets = shard_offsets(NUM_RECORDS, 3)
        base = 0
        rebuilt = []
        for shard in range(3):
            local = draw_shard_local_plan(
                int(offsets[shard + 1] - offsets[shard]),
                BLOCK_SIZE, 2, plan_seed=99, shards=3, shard=shard,
            )
            rebuilt.extend(
                [int(offsets[shard]) + int(i) for i in block]
                for block in local.blocks
            )
            base += local.num_blocks
        assert [list(map(int, b)) for b in combined.blocks] == rebuilt

    def test_slice_stacked_matches_worker_local_stack(self):
        """The coordinator's combined stack slices into exactly the
        worker-local materializations — the equivalence the partials-only
        combine rests on."""
        values = _values(600)
        shards = 3
        cache = BlockPlanCache(metrics=MetricsRegistry())
        combined_key = PlanKey(
            dataset="d", version=1, num_records=600, block_size=BLOCK_SIZE,
            resampling_factor=1, seed=5, shards=shards,
        )
        _, combined_stacked = cache.plan_and_stack(
            combined_key, values,
            lambda: draw_sharded_plan(
                600, block_size=BLOCK_SIZE, plan_seed=5, shards=shards
            ),
        )
        offsets = shard_offsets(600, shards)
        for shard in range(shards):
            local_values = values[int(offsets[shard]) : int(offsets[shard + 1])]
            local_plan = draw_shard_local_plan(
                local_values.shape[0], BLOCK_SIZE, 1,
                plan_seed=5, shards=shards, shard=shard,
            )
            local_stacked = np.stack(
                [local_values[list(block)] for block in local_plan.blocks]
            )
            np.testing.assert_array_equal(
                slice_stacked_for_shard(combined_stacked, combined_key, shard),
                local_stacked,
            )

    def test_shard_block_counts_partition_the_plan(self):
        counts = shard_block_counts(NUM_RECORDS, BLOCK_SIZE, 2, 3)
        combined = draw_sharded_plan(
            NUM_RECORDS, block_size=BLOCK_SIZE, resampling_factor=2,
            plan_seed=1, shards=3,
        )
        assert int(np.sum(counts)) == combined.num_blocks


class TestSelfHealing:
    def test_worker_killed_between_queries_heals_bit_identically(self):
        metrics = MetricsRegistry()
        manager = DatasetManager()
        manager.register(
            "data", DataTable(_values(), input_ranges=[(0.0, 100.0)]),
            total_budget=100.0,
        )
        computation = ComputationManager(
            backend="sharded", shards=4, max_workers=2, metrics=metrics
        )
        runtime = GuptRuntime(
            manager, computation_manager=computation, rng=SEED, metrics=metrics
        )
        try:
            def query(seed):
                result = runtime.run(
                    "data", Mean(), TightRange((0.0, 100.0)),
                    epsilon=EPSILON, block_size=BLOCK_SIZE, rng=seed,
                )
                return tuple(float(v) for v in result.value)

            before = query(11)
            computation.sharded_backend._workers[0].kill()
            after = query(11)
        finally:
            runtime.close()
        assert before == after
        counters = metrics.snapshot()["counters"]
        assert counters["shard.worker_restarts"] >= 1
        # The healed worker needed the dataset re-pushed, but the
        # coordinator never re-copied the segment for the live ones.
        assert counters["shard.dataset_pushes"] == 1

    def test_crash_during_query_substitutes_fallback_rows(self):
        """A program that kills its worker on one shard's data: the query
        still completes, the dead shard resolving to fallback rows —
        the same data-independent outcome the pool backend gives killed
        blocks."""
        # Shard 0 owns the negative half; every block drawn from it
        # kills the worker (twice, after one heal-and-retry).
        values = np.concatenate(
            [np.full(500, -50.0), np.full(500, 50.0)]
        ).reshape(-1, 1)
        metrics = MetricsRegistry()
        manager = DatasetManager()
        manager.register(
            "data", DataTable(values, input_ranges=[(-100.0, 100.0)]),
            total_budget=100.0,
        )
        computation = ComputationManager(
            backend="sharded", shards=2, max_workers=2, metrics=metrics
        )
        runtime = GuptRuntime(
            manager, computation_manager=computation, rng=SEED, metrics=metrics
        )
        try:
            result = runtime.run(
                "data", crash_on_negative_mean, TightRange((-100.0, 100.0)),
                epsilon=EPSILON, block_size=100, rng=3,
            )
        finally:
            runtime.close()
        assert np.all(np.isfinite(result.value))
        counters = metrics.snapshot()["counters"]
        assert counters["shard.worker_restarts"] >= 1
        assert counters["blocks.fallback"] >= 1
        assert counters["blocks.success"] >= 1


class TestDegrades:
    def test_unpicklable_program_degrades_bit_compatibly(self):
        def make_program():
            offset = 0.0  # closure => unpicklable across processes
            program = lambda block: float(np.mean(block)) + offset  # noqa: E731
            program.output_dimension = 1
            return program

        metrics = MetricsRegistry()
        sharded = _release(
            backend="sharded", workers=2, shards=3,
            metrics=metrics, program=make_program(),
        )
        serial = _release(backend="serial", shards=3, program=make_program())
        assert sharded == serial
        counters = metrics.snapshot()["counters"]
        assert counters['sharded.fallbacks{reason="unpicklable"}'] == 1
        assert counters.get("shard.queries", 0) == 0

    def test_timing_defense_degrades_bit_compatibly(self):
        metrics = MetricsRegistry()
        guarded = ComputationManager(
            backend="sharded", shards=3, max_workers=2,
            timing=TimingDefense(cycle_budget=30.0, pad=False),
            metrics=metrics,
        )
        sharded = _release(computation=guarded, metrics=metrics)
        serial = _release(backend="serial", shards=3)
        assert sharded == serial
        counters = metrics.snapshot()["counters"]
        assert counters['sharded.fallbacks{reason="timing_defense"}'] == 1

    def test_grouped_query_bypasses_fast_path(self):
        """group_by hands the engine an explicit plan; the sharded
        backend must answer it through the chamber path, identically to
        serial."""
        labels = np.repeat(np.arange(25), 40).astype(float)
        table = DataTable(
            np.column_stack([_values().ravel(), labels]),
            column_names=("x", "user"),
            input_ranges=[(0.0, 100.0), (0.0, 25.0)],
        )

        def grouped_release(backend):
            metrics = MetricsRegistry()
            manager = DatasetManager()
            manager.register("data", table, total_budget=100.0)
            runtime = GuptRuntime(
                manager, rng=SEED, backend=backend, workers=2, shards=2,
                metrics=metrics,
            )
            try:
                result = runtime.run(
                    "data", Mean(), TightRange((0.0, 100.0)),
                    epsilon=EPSILON, group_by="user", rng=9,
                )
            finally:
                runtime.close()
            return tuple(float(v) for v in result.value), metrics

        sharded_value, metrics = grouped_release("sharded")
        serial_value, _ = grouped_release("serial")
        assert sharded_value == serial_value
        assert metrics.snapshot()["counters"].get("shard.queries", 0) == 0


class TestValidation:
    def test_backend_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ShardedExecutionBackend(shards=0)
        with pytest.raises(ValueError):
            ShardedExecutionBackend(shards=2, workers=0)
        with pytest.raises(ValueError):
            ShardedExecutionBackend(shards=2, resident_datasets=0)

    def test_workers_clamped_to_shards(self):
        backend = ShardedExecutionBackend(shards=2, workers=8)
        assert backend.workers == 2
        backend.close()

    def test_spec_shard_mismatch_is_an_error(self):
        backend = ShardedExecutionBackend(shards=2, workers=1)
        spec = ShardQuerySpec(
            dataset="d", version=1, num_records=100, block_size=10,
            resampling_factor=1, plan_seed=0, shards=3,
            output_dimension=1, fallback=(0.0,),
        )
        try:
            with pytest.raises(ComputationError, match="3 shards"):
                backend.run_sharded(b"", _values(100), spec)
        finally:
            backend.close()

    def test_manager_validates_shard_count(self):
        with pytest.raises(ValueError):
            ComputationManager(backend="sharded", shards=0)

    def test_manager_rejects_mismatched_prebuilt_backend(self):
        backend = ShardedExecutionBackend(shards=2, workers=1)
        try:
            with pytest.raises(ValueError):
                ComputationManager(backend="sharded", shards=4, sharded=backend)
        finally:
            backend.close()

    def test_collected_requires_sharded_backend(self):
        manager = ComputationManager(backend="serial")
        with pytest.raises(ComputationError):
            manager.run_sharded_collected(
                Mean(), _values(100), dataset="d", version=1,
                block_size=10, resampling_factor=1, plan_seed=0,
                output_dimension=1, fallback=np.zeros(1),
            )

    def test_serial_backends_honor_the_shards_knob(self):
        manager = ComputationManager(backend="serial", shards=3)
        assert manager.plan_shards == 3
        assert manager.sharded_backend is None

    def test_sharded_default_is_one_shard_per_worker(self):
        manager = ComputationManager(backend="sharded", max_workers=3)
        try:
            assert manager.plan_shards == 3
            assert manager.sharded_backend.shards == 3
        finally:
            manager.close()


class TestFederatedDeterminism:
    """Curator-held rows: the node split is deployment geometry too.

    The same 600 rows are handed to 1, 2, 3 or 6 curator nodes (each
    holding a contiguous slice aligned on shard boundaries); every
    split — and the in-process engine holding all rows locally — must
    release bit-identical values at the same logical shard count.
    """

    SPLITS = {
        "one-curator": (600,),
        "two-curators": (300, 300),
        "three-curators": (200, 200, 200),
        "six-curators": (100,) * 6,
    }

    def _federated_release(self, split, secret=None):
        from repro.runtime.remote import ShardNodeServer

        values = _values(600)
        servers = []
        addresses = []
        base = 0
        try:
            for rows in split:
                server = ShardNodeServer(
                    curated={"data": values[base : base + rows]}, secret=secret
                )
                servers.append(server)
                addresses.append("{0}:{1}".format(*server.start()))
                base += rows
            runtime = GuptRuntime(
                DatasetManager(), rng=SEED, backend="remote",
                nodes=addresses, shards=6, node_secret=secret,
            )
            try:
                runtime.register_federated(
                    "data", total_budget=100.0, input_ranges=[(0.0, 100.0)]
                )
                result = runtime.run(
                    "data", Mean(), TightRange((0.0, 100.0)),
                    epsilon=EPSILON, block_size=BLOCK_SIZE, rng=QUERY_SEED,
                )
            finally:
                runtime.close()
            return tuple(float(v) for v in result.value), result.num_blocks
        finally:
            for server in servers:
                server.stop()

    def test_curator_split_never_moves_bits(self):
        releases = {
            name: self._federated_release(split)
            for name, split in self.SPLITS.items()
        }
        releases["in-process"] = _release(
            backend="sharded", workers=2, shards=6, num_records=600
        )
        assert len(set(releases.values())) == 1, releases

    def test_authenticated_curators_release_the_same_bits(self):
        """The auth handshake is transport, not plan: bits don't move."""
        authenticated = self._federated_release((300, 300), secret="s3cret")
        in_process = _release(
            backend="sharded", workers=2, shards=6, num_records=600
        )
        assert authenticated == in_process

    def test_misaligned_curator_split_is_refused(self):
        """A curator boundary off the shard grid can't silently re-shard."""
        from repro.exceptions import GuptError

        with pytest.raises((ComputationError, GuptError), match="federate|boundar|align|row counts"):
            self._federated_release((250, 350))
