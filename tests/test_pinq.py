"""Unit tests for the PINQ baseline."""

import numpy as np
import pytest

from repro.baselines.pinq.agent import BudgetAgent
from repro.baselines.pinq.queryable import PINQueryable
from repro.exceptions import InvalidPrivacyParameter, InvalidRange, PrivacyBudgetExhausted


@pytest.fixture
def queryable(rng):
    data = rng.uniform(0.0, 10.0, size=(500, 2))
    return PINQueryable(data, BudgetAgent(1000.0), rng=0), data


class TestBudgetAgent:
    def test_charges_accumulate(self):
        agent = BudgetAgent(2.0)
        agent.charge(0.5)
        agent.charge(0.5)
        assert agent.spent == pytest.approx(1.0)
        assert agent.remaining == pytest.approx(1.0)

    def test_overdraft_rejected(self):
        agent = BudgetAgent(1.0)
        with pytest.raises(PrivacyBudgetExhausted):
            agent.charge(1.5)

    @pytest.mark.parametrize("total", [0.0, -1.0])
    def test_invalid_total(self, total):
        with pytest.raises(InvalidPrivacyParameter):
            BudgetAgent(total)


class TestAggregations:
    def test_noisy_count_near_truth(self, queryable):
        q, data = queryable
        counts = [q.noisy_count(epsilon=5.0) for _ in range(20)]
        assert np.mean(counts) == pytest.approx(500, abs=3)

    def test_noisy_count_charges(self, queryable):
        q, _ = queryable
        q.noisy_count(epsilon=0.7)
        assert q.agent.spent == pytest.approx(0.7)

    def test_noisy_sum_near_truth(self, queryable):
        q, data = queryable
        sums = [q.noisy_sum(epsilon=5.0, lo=0.0, hi=10.0) for _ in range(20)]
        assert np.mean(sums) == pytest.approx(data[:, 0].sum(), rel=0.02)

    def test_noisy_sum_clamps_outliers(self, rng):
        data = np.array([[1.0], [1e9]])
        q = PINQueryable(data, BudgetAgent(100.0), rng=0)
        total = q.noisy_sum(epsilon=50.0, lo=0.0, hi=10.0)
        assert total < 100.0

    def test_noisy_average_within_bounds(self, queryable):
        q, _ = queryable
        avg = q.noisy_average(epsilon=1.0, lo=0.0, hi=10.0)
        assert 0.0 <= avg <= 10.0

    def test_noisy_average_charges_full_epsilon(self, queryable):
        q, _ = queryable
        q.noisy_average(epsilon=1.0, lo=0.0, hi=10.0)
        assert q.agent.spent == pytest.approx(1.0)

    def test_invalid_clamp_rejected(self, queryable):
        q, _ = queryable
        with pytest.raises(InvalidRange):
            q.noisy_sum(epsilon=1.0, lo=5.0, hi=0.0)

    def test_exhaustion_stops_queries(self, rng):
        q = PINQueryable(rng.uniform(size=(10, 1)), BudgetAgent(1.0), rng=0)
        q.noisy_count(epsilon=1.0)
        with pytest.raises(PrivacyBudgetExhausted):
            q.noisy_count(epsilon=0.1)


class TestTransformations:
    def test_where_filters(self, queryable):
        q, data = queryable
        filtered = q.where(lambda row: row[0] > 5.0)
        count = filtered.noisy_count(epsilon=50.0)
        assert count == pytest.approx((data[:, 0] > 5.0).sum(), abs=2)

    def test_where_costs_nothing(self, queryable):
        q, _ = queryable
        q.where(lambda row: True)
        assert q.agent.spent == 0.0

    def test_select_transforms(self, queryable):
        q, data = queryable
        doubled = q.select(lambda row: [2.0 * row[0]])
        total = doubled.noisy_sum(epsilon=50.0, lo=0.0, hi=20.0)
        assert total == pytest.approx(2 * data[:, 0].sum(), rel=0.02)

    def test_empty_where_result_handled(self, queryable):
        q, _ = queryable
        empty = q.where(lambda row: False)
        count = empty.noisy_count(epsilon=50.0)
        assert abs(count) < 2.0


class TestPartition:
    def test_partitions_are_disjoint_and_complete(self, queryable):
        q, data = queryable
        parts = q.partition([0, 1], key_fn=lambda row: int(row[0] > 5.0))
        c0 = parts[0].noisy_count(epsilon=100.0)
        c1 = parts[1].noisy_count(epsilon=100.0)
        assert c0 + c1 == pytest.approx(500, abs=3)

    def test_parallel_composition_charges_max_not_sum(self, queryable):
        q, _ = queryable
        parts = q.partition([0, 1, 2], key_fn=lambda row: int(row[0]) % 3)
        for key in (0, 1, 2):
            parts[key].noisy_count(epsilon=0.5)
        # Three disjoint counts at eps=0.5 cost max(0.5) = 0.5 total.
        assert q.agent.spent == pytest.approx(0.5)

    def test_unbalanced_child_spending_charges_running_max(self, queryable):
        q, _ = queryable
        parts = q.partition([0, 1], key_fn=lambda row: int(row[0] > 5.0))
        parts[0].noisy_count(epsilon=0.3)
        assert q.agent.spent == pytest.approx(0.3)
        parts[1].noisy_count(epsilon=0.5)
        assert q.agent.spent == pytest.approx(0.5)
        parts[0].noisy_count(epsilon=0.4)  # child 0 now at 0.7 total
        assert q.agent.spent == pytest.approx(0.7)

    def test_unknown_keys_dropped(self, queryable):
        q, data = queryable
        parts = q.partition([0], key_fn=lambda row: int(row[0] > 5.0))
        count = parts[0].noisy_count(epsilon=100.0)
        assert count == pytest.approx((data[:, 0] <= 5.0).sum(), abs=2)


class TestNoisyMedian:
    def test_near_truth_at_high_epsilon(self, queryable):
        q, data = queryable
        import numpy as np
        medians = [q.noisy_median(epsilon=20.0, lo=0.0, hi=10.0) for _ in range(10)]
        assert np.median(medians) == pytest.approx(np.median(data[:, 0]), abs=0.5)

    def test_charges(self, queryable):
        q, _ = queryable
        q.noisy_median(epsilon=0.4, lo=0.0, hi=10.0)
        assert q.agent.spent == pytest.approx(0.4)

    def test_within_bounds(self, queryable):
        q, _ = queryable
        assert 0.0 <= q.noisy_median(epsilon=0.1, lo=0.0, hi=10.0) <= 10.0

    def test_invalid_range_rejected(self, queryable):
        q, _ = queryable
        with pytest.raises(InvalidRange):
            q.noisy_median(epsilon=1.0, lo=5.0, hi=1.0)


class TestExponentialChoice:
    def test_picks_high_score_candidate(self, queryable):
        q, data = queryable
        # Score each threshold by how many records exceed it (sensitivity 1).
        chosen = q.exponential_choice(
            epsilon=50.0,
            candidates=[2.0, 5.0, 9.9],
            score=lambda view, t: float((view._records[:, 0] > t).sum()),
        )
        assert chosen == 2.0

    def test_charges_once(self, queryable):
        q, _ = queryable
        q.exponential_choice(
            epsilon=0.7, candidates=[1, 2], score=lambda view, c: 0.0
        )
        assert q.agent.spent == pytest.approx(0.7)

    def test_empty_candidates_rejected(self, queryable):
        q, _ = queryable
        with pytest.raises(ValueError):
            q.exponential_choice(epsilon=1.0, candidates=[], score=lambda v, c: 0.0)
