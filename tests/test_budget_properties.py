"""Property-based invariants for transactional budget accounting.

Hand-rolled property testing (seeded :mod:`numpy` random scripts, no
external dependency): each property runs many randomly generated
operation sequences — serially against a shadow model, and concurrently
as random thread interleavings — and asserts the accounting invariants
*exactly*.

Exactness is by construction: every generated epsilon is a dyadic
rational ``k / 1024`` with totals below ``2**3``, so every sum the
accounting can form fits a float mantissa with room to spare and the
invariants can be asserted with ``==``, no tolerance.  A one-ulp drift
anywhere in reserve/commit/rollback would fail these tests.

Invariants under test:

* conservation: ``spent + reserved + headroom == total`` at every step;
* safety: ``spent <= total`` and ``remaining >= 0`` always;
* audit: the ledger's :func:`math.fsum` total equals ``budget.spent``;
* reversibility: any sequence of reserves and rollbacks restores the
  budget bit-for-bit;
* atomicity: a refused reservation changes nothing.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.accounting.budget import PrivacyBudget
from repro.accounting.manager import DatasetManager
from repro.datasets.table import DataTable
from repro.exceptions import PrivacyBudgetExhausted
from repro.observability import MetricsRegistry

SEEDS = list(range(10))
#: All epsilons are multiples of this; sums of a few thousand of them
#: are exact in binary floating point.
QUANTUM = 1.0 / 1024.0


def _epsilon(rng: np.random.Generator) -> float:
    return int(rng.integers(1, 257)) * QUANTUM


def _table() -> DataTable:
    rng = np.random.default_rng(99)
    return DataTable(rng.uniform(0.0, 1.0, size=(32, 1)), column_names=("x",))


class _ShadowModel:
    """Exact reference implementation of the budget state machine."""

    def __init__(self, total: float):
        self.total = total
        self.committed: list[float] = []
        self.holds: dict[int, float] = {}

    @property
    def spent(self) -> float:
        return math.fsum(self.committed)

    @property
    def reserved(self) -> float:
        return math.fsum(self.holds.values())

    @property
    def remaining(self) -> float:
        return max(0.0, self.total - self.spent - self.reserved)

    def fits(self, epsilon: float) -> bool:
        return epsilon <= self.total - self.spent - self.reserved


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_scripts_match_shadow_model(seed):
    """Random op sequences agree with the exact reference, step by step."""
    rng = np.random.default_rng(seed)
    total = int(rng.integers(2, 8)) * 1.0
    budget = PrivacyBudget(total, dataset="prop")
    model = _ShadowModel(total)
    live: list[tuple[int, int]] = []  # (real id, model id)
    next_model_id = 0

    for _ in range(400):
        op = rng.integers(0, 4)
        if op == 0:  # reserve
            epsilon = _epsilon(rng)
            if model.fits(epsilon):
                live.append((budget.reserve(epsilon), next_model_id))
                model.holds[next_model_id] = epsilon
                next_model_id += 1
            else:
                with pytest.raises(PrivacyBudgetExhausted):
                    budget.reserve(epsilon)
        elif op == 1 and live:  # commit a random hold
            index = int(rng.integers(0, len(live)))
            real_id, model_id = live.pop(index)
            budget.commit_reservation(real_id)
            model.committed.append(model.holds.pop(model_id))
        elif op == 2 and live:  # roll back a random hold
            index = int(rng.integers(0, len(live)))
            real_id, model_id = live.pop(index)
            budget.release_reservation(real_id)
            del model.holds[model_id]
        elif op == 3:  # one-shot charge
            epsilon = _epsilon(rng)
            if model.fits(epsilon):
                budget.charge(epsilon)
                model.committed.append(epsilon)
            else:
                with pytest.raises(PrivacyBudgetExhausted):
                    budget.charge(epsilon)

        # Exact agreement with the model after every single operation.
        assert budget.spent == model.spent
        assert budget.reserved == model.reserved
        assert budget.remaining == model.remaining
        # Conservation and safety, independent of the model.
        assert budget.spent + budget.reserved <= total
        assert budget.remaining >= 0.0


@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_interleavings_conserve_budget(seed):
    """Random per-thread scripts: no interleaving breaks the invariants."""
    rng = np.random.default_rng(seed)
    total = int(rng.integers(2, 6)) * 1.0
    manager = DatasetManager(metrics=MetricsRegistry())
    registered = manager.register("prop", _table(), total_budget=total)

    threads = 8
    committed_per_thread: list[list[float]] = [[] for _ in range(threads)]
    thread_seeds = [int(s) for s in rng.integers(0, 2**31, size=threads)]
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def script(slot: int) -> None:
        local = np.random.default_rng(thread_seeds[slot])
        barrier.wait()
        try:
            for step in range(60):
                epsilon = _epsilon(local)
                try:
                    reservation = registered.reserve(epsilon, f"t{slot}-q{step}")
                except PrivacyBudgetExhausted:
                    continue
                # Mixed outcomes: some queries fail pre-release and roll
                # back, the rest commit.
                if local.integers(0, 3) == 0:
                    reservation.rollback()
                else:
                    reservation.commit()
                    committed_per_thread[slot].append(epsilon)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=script, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors

    all_committed = [e for chunk in committed_per_thread for e in chunk]
    budget = registered.budget
    # Safety: never oversubscribed, bit-exactly.
    assert budget.spent <= total
    # Everything settled: no hold outlives its query.
    assert budget.reserved == 0.0
    # The spend equals the exact sum of every committed epsilon: no
    # interleaving lost, duplicated or fabricated budget.
    assert budget.spent == math.fsum(all_committed)
    # The audit trail agrees entry-for-entry.
    assert registered.ledger.total_spent == budget.spent
    assert len(registered.ledger) == len(all_committed)


@pytest.mark.parametrize("seed", SEEDS)
def test_reserve_rollback_cycles_restore_state(seed):
    """Any storm of reserves and rollbacks leaves the budget untouched."""
    rng = np.random.default_rng(seed)
    total = 4.0
    budget = PrivacyBudget(total, dataset="prop")
    spent_before = budget.spent

    live: list[int] = []
    for _ in range(300):
        if rng.integers(0, 2) == 0:
            epsilon = _epsilon(rng)
            try:
                live.append(budget.reserve(epsilon))
            except PrivacyBudgetExhausted:
                pass
        elif live:
            budget.release_reservation(live.pop(int(rng.integers(0, len(live)))))
    for reservation_id in live:
        budget.release_reservation(reservation_id)

    assert budget.spent == spent_before
    assert budget.reserved == 0.0
    assert budget.remaining == total


@pytest.mark.parametrize("seed", SEEDS)
def test_refused_reservation_changes_nothing(seed):
    """A refusal is atomic: observable state is identical before/after."""
    rng = np.random.default_rng(seed)
    total = 2.0
    budget = PrivacyBudget(total, dataset="prop")
    # Drive the budget to a random nearly-full point.
    while budget.remaining > 0.5:
        budget.charge(_epsilon(rng))
    snapshot = (budget.spent, budget.reserved, budget.remaining)

    oversized = budget.remaining + QUANTUM
    for _ in range(20):
        with pytest.raises(PrivacyBudgetExhausted):
            budget.reserve(oversized)
        with pytest.raises(PrivacyBudgetExhausted):
            budget.charge(oversized)
    assert (budget.spent, budget.reserved, budget.remaining) == snapshot
