"""Soak test: sustained seeded queries against a real multi-node cluster.

Runs a coordinator against ``repro shard-node`` subprocesses for a
wall-clock duration taken from ``REPRO_SOAK_SECONDS`` (default 2 so the
tier-1 run stays fast; the CI distributed job sets 30), alternating
between two query plans, and asserts *continuous* bit-identity: every
single release over the whole soak must equal the in-process sharded
engine's answer for the same plan, byte for byte.

Halfway through, one node is killed outright.  The cluster must carry
on — surviving nodes adopt the orphaned shards by replaying
``spawn(plan_seed, S)[s]`` — and the releases before and after the kill
must be indistinguishable.  No query may ever degrade to fallback rows
while at least one node survives.

Heartbeats run at a short interval throughout, so node death is also
detected on the background path, not just at dispatch time.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.estimators.statistics import Mean
from repro.observability import MetricsRegistry
from repro.runtime.remote import RemoteShardBackend
from repro.runtime.shard import ShardQuerySpec, ShardedExecutionBackend

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "2"))
SRC_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

SEED = 20120520  # GUPT's SIGMOD year, mostly
SHARDS = 6
NODES = 3
PLAN_SEEDS = (271828, 314159)  # alternate between two distinct plans

PROGRAM = pickle.dumps(Mean())


def _spec(plan_seed: int) -> ShardQuerySpec:
    return ShardQuerySpec(
        dataset="soak-data",
        version=1,
        num_records=600,
        block_size=20,
        resampling_factor=1,
        plan_seed=plan_seed,
        shards=SHARDS,
        output_dimension=1,
        fallback=(-1.0,),  # outside [0, 100]: fallback rows are unmistakable
        clamp_lo=(0.0,),
        clamp_hi=(100.0,),
    )


def _values() -> np.ndarray:
    return np.random.default_rng(SEED).uniform(0.0, 100.0, size=(600, 1))


def _spawn_node() -> tuple[subprocess.Popen, str]:
    """One healthy ``repro shard-node`` subprocess on an ephemeral port.

    Anti-flake convention (see DESIGN.md): the node binds port 0 and
    announces ``LISTENING host port`` strictly after the listener is up;
    we block on that line instead of racing a pre-picked port.
    """
    env = {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            p for p in (SRC_PATH, os.environ.get("PYTHONPATH")) if p
        ),
    }
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-node", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = process.stdout.readline().strip()
    parts = line.split()
    assert parts and parts[0] == "LISTENING", f"node failed to start: {line!r}"
    return process, f"{parts[1]}:{parts[2]}"


def test_remote_cluster_soak_with_mid_soak_node_kill():
    values = _values()
    baselines = {}
    golden = ShardedExecutionBackend(shards=SHARDS, metrics=MetricsRegistry())
    try:
        for plan_seed in PLAN_SEEDS:
            _, batch = golden.run_sharded(PROGRAM, values, _spec(plan_seed))
            assert batch.succeeded.all()
            baselines[plan_seed] = batch.outputs.copy()
    finally:
        golden.close()

    nodes = [_spawn_node() for _ in range(NODES)]
    metrics = MetricsRegistry()
    queries = 0
    killed = False
    try:
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=[address for _, address in nodes],
            metrics=metrics,
            heartbeat_interval=0.25,
            node_timeout=10.0,
        )
        try:
            deadline = time.monotonic() + SOAK_SECONDS
            halfway = time.monotonic() + SOAK_SECONDS / 2.0
            while True:
                # A short idle gap between queries: realistic traffic,
                # and it leaves windows where the dispatch lock is free
                # so the background heartbeat (which skips rounds while
                # a query is in flight) actually gets to probe.
                time.sleep(0.02)
                plan_seed = PLAN_SEEDS[queries % len(PLAN_SEEDS)]
                _, batch = backend.run_sharded(PROGRAM, values, _spec(plan_seed))
                queries += 1
                assert batch.succeeded.all(), (
                    f"query {queries} degraded (killed={killed})"
                )
                np.testing.assert_array_equal(
                    batch.outputs, baselines[plan_seed],
                    err_msg=f"query {queries} drifted (killed={killed})",
                )
                now = time.monotonic()
                if not killed and now >= halfway:
                    nodes[0][0].kill()
                    nodes[0][0].wait(timeout=10.0)
                    killed = True
                # Run at least one query on each side of the kill even if
                # the clock has already expired (slow CI machines).
                if now >= deadline and killed and queries >= 4:
                    break
        finally:
            backend.close()
    finally:
        for process, _ in nodes:
            process.kill()
        for process, _ in nodes:
            process.wait(timeout=10.0)

    counters = metrics.snapshot()["counters"]
    assert queries >= 4
    assert killed, "soak never reached the kill point"
    assert counters.get("remote.node_deaths", 0) >= 1
    # Adoption evidence: the dead node's shards were re-pushed to the
    # survivors, so strictly more than S segment pushes crossed the wire.
    # (remote.reassigned_shards only counts deaths detected mid-collect;
    # here the heartbeat thread usually wins that race.)
    assert counters.get("remote.segment_pushes", 0) > SHARDS
    assert counters.get("remote.degraded_queries", 0) == 0
    assert counters.get("remote.fallback_shards", 0) == 0
    # The heartbeat thread was alive the whole soak.
    assert counters.get("remote.heartbeats", 0) >= 1


def _spawn_curator(
    tmp_path, name: str, rows: np.ndarray, dataset: str, secret: str
) -> tuple[subprocess.Popen, str]:
    """One authenticated curator subprocess loading its own ``--data``."""
    data_path = os.path.join(str(tmp_path), f"{name}.npy")
    np.save(data_path, rows)
    env = {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            p for p in (SRC_PATH, os.environ.get("PYTHONPATH")) if p
        ),
    }
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "shard-node", "127.0.0.1:0",
            "--data", data_path, "--dataset", dataset, "--secret", secret,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = process.stdout.readline().strip()
    parts = line.split()
    assert parts and parts[0] == "LISTENING", f"curator failed to start: {line!r}"
    return process, f"{parts[1]}:{parts[2]}"


def test_two_curator_soak_stays_bit_identical_and_pushes_nothing(tmp_path):
    """Sustained queries against two authenticated curator subprocesses.

    The curators load their own rows from disk (``--data``), authenticate
    the coordinator (``--secret``), and answer partials for their own
    halves.  Every release over the soak must equal the in-process
    engine's answer byte for byte, and — the curator-mode boundary —
    not a single segment push may cross the wire for the whole soak.
    """
    from repro.datasets.table import FederatedValues

    secret = "soak-secret"
    dataset = "soak-fed"
    values = _values()
    baselines = {}
    golden = ShardedExecutionBackend(shards=SHARDS, metrics=MetricsRegistry())
    try:
        for plan_seed in PLAN_SEEDS:
            spec = _spec(plan_seed)
            spec = type(spec)(**{**spec.__dict__, "dataset": dataset})
            _, batch = golden.run_sharded(PROGRAM, values, spec)
            assert batch.succeeded.all()
            baselines[plan_seed] = batch.outputs.copy()
    finally:
        golden.close()

    curators = [
        _spawn_curator(tmp_path, "north", values[:300], dataset, secret),
        _spawn_curator(tmp_path, "south", values[300:], dataset, secret),
    ]
    metrics = MetricsRegistry()
    proxy = FederatedValues(600, 1)
    queries = 0
    try:
        backend = RemoteShardBackend(
            shards=SHARDS,
            nodes=[address for _, address in curators],
            metrics=metrics,
            heartbeat_interval=0.25,
            node_timeout=10.0,
            secret=secret,
        )
        try:
            geometry = backend.federate(dataset)
            assert geometry["node_rows"] == (300, 300)
            deadline = time.monotonic() + SOAK_SECONDS
            while True:
                time.sleep(0.02)
                plan_seed = PLAN_SEEDS[queries % len(PLAN_SEEDS)]
                spec = _spec(plan_seed)
                spec = type(spec)(**{**spec.__dict__, "dataset": dataset})
                _, batch = backend.run_sharded(PROGRAM, proxy, spec)
                queries += 1
                assert batch.succeeded.all(), f"query {queries} degraded"
                np.testing.assert_array_equal(
                    batch.outputs, baselines[plan_seed],
                    err_msg=f"query {queries} drifted",
                )
                if time.monotonic() >= deadline and queries >= 4:
                    break
        finally:
            backend.close()
    finally:
        for process, _ in curators:
            process.kill()
        for process, _ in curators:
            process.wait(timeout=10.0)

    counters = metrics.snapshot()["counters"]
    assert queries >= 4
    # The curator-mode wire boundary, held for the whole soak: the
    # coordinator pushed nothing, ever.
    assert counters.get("remote.segment_pushes", 0) == 0
    assert counters.get("remote.degraded_queries", 0) == 0
    assert counters.get("remote.fallback_shards", 0) == 0
    assert counters.get("remote.node_deaths", 0) == 0
    assert counters.get("remote.heartbeats", 0) >= 1
