"""Unit and integration tests for the block-plan cache.

Covers the cache mechanics (LRU bounds, byte budget, invalidation), the
privacy invariant that keys are built from public parameters only, and
the two ends of the runtime integration: releases are bit-identical with
a cold cache, a warm cache and no cache at all, and re-registering a
dataset name can never serve plans drawn against the old records.
"""

import numpy as np
import pytest

from repro.accounting.manager import DatasetManager
from repro.core.blocks import BlockPlan
from repro.core.gupt import GuptRuntime
from repro.core.plan_cache import BlockPlanCache, PlanKey
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import GuptError
from repro.observability import MetricsRegistry


def make_key(seed=7, dataset="d", version=1, n=100, beta=10, gamma=1):
    return PlanKey(
        dataset=dataset,
        version=version,
        num_records=n,
        block_size=beta,
        resampling_factor=gamma,
        seed=seed,
    )


def drawer(key):
    """The pure draw function the engine supplies: seed -> plan."""
    return lambda: BlockPlan.draw(
        num_records=key.num_records,
        block_size=key.block_size,
        resampling_factor=key.resampling_factor,
        rng=np.random.default_rng(key.seed),
    )


class TestCacheMechanics:
    def test_miss_then_hit_returns_same_objects(self):
        cache = BlockPlanCache(metrics=MetricsRegistry())
        values = np.arange(100, dtype=float).reshape(-1, 1)
        key = make_key()
        plan1, stacked1 = cache.plan_and_stack(key, values, drawer(key))
        plan2, stacked2 = cache.plan_and_stack(key, values, drawer(key))
        assert plan1 is plan2
        assert stacked1 is stacked2
        assert stacked1.shape == (10, 10, 1)

    def test_different_seeds_are_different_entries(self):
        cache = BlockPlanCache(metrics=MetricsRegistry())
        values = np.arange(100, dtype=float).reshape(-1, 1)
        a, b = make_key(seed=1), make_key(seed=2)
        plan_a, _ = cache.plan_and_stack(a, values, drawer(a))
        plan_b, _ = cache.plan_and_stack(b, values, drawer(b))
        assert plan_a is not plan_b
        assert len(cache) == 2

    def test_lru_entry_bound(self):
        registry = MetricsRegistry()
        cache = BlockPlanCache(max_entries=2, metrics=registry)
        values = np.arange(100, dtype=float).reshape(-1, 1)
        keys = [make_key(seed=s) for s in range(3)]
        for key in keys:
            cache.plan_and_stack(key, values, drawer(key))
        assert len(cache) == 2
        # Oldest (seed=0) was evicted; a re-lookup is a miss again.
        counters = registry.snapshot()["counters"]
        assert counters["plan_cache.evictions"] == 1
        cache.plan_and_stack(keys[0], values, drawer(keys[0]))
        assert registry.snapshot()["counters"]["plan_cache.misses"] == 4

    def test_lru_recency_updated_on_hit(self):
        cache = BlockPlanCache(max_entries=2, metrics=MetricsRegistry())
        values = np.arange(100, dtype=float).reshape(-1, 1)
        a, b, c = (make_key(seed=s) for s in range(3))
        plan_a, _ = cache.plan_and_stack(a, values, drawer(a))
        cache.plan_and_stack(b, values, drawer(b))
        cache.plan_and_stack(a, values, drawer(a))  # refresh a
        cache.plan_and_stack(c, values, drawer(c))  # evicts b, not a
        plan_a2, _ = cache.plan_and_stack(a, values, drawer(a))
        assert plan_a2 is plan_a

    def test_byte_budget_evicts(self):
        # Each stacked materialization is ~80 KB; a 100 KB budget can
        # hold one entry at a time (never zero — the newest survives).
        cache = BlockPlanCache(max_bytes=100_000, metrics=MetricsRegistry())
        values = np.zeros((10_000, 1))
        a, b = make_key(seed=1, n=10_000, beta=100), make_key(seed=2, n=10_000, beta=100)
        cache.plan_and_stack(a, values, drawer(a))
        cache.plan_and_stack(b, values, drawer(b))
        assert len(cache) == 1
        assert cache.nbytes <= 100_000 + values.nbytes  # newest entry retained

    def test_invalidate_scopes_by_dataset_name(self):
        registry = MetricsRegistry()
        cache = BlockPlanCache(metrics=registry)
        values = np.arange(100, dtype=float).reshape(-1, 1)
        keep, drop = make_key(dataset="keep"), make_key(dataset="drop")
        cache.plan_and_stack(keep, values, drawer(keep))
        cache.plan_and_stack(drop, values, drawer(drop))
        assert cache.invalidate("drop") == 1
        assert len(cache) == 1
        assert registry.snapshot()["counters"]["plan_cache.invalidations"] == 1
        # The surviving entry still hits.
        cache.plan_and_stack(keep, values, drawer(keep))
        assert registry.snapshot()["counters"]["plan_cache.hits"] == 1

    def test_clear_empties_everything(self):
        cache = BlockPlanCache(metrics=MetricsRegistry())
        values = np.arange(100, dtype=float).reshape(-1, 1)
        key = make_key()
        cache.plan_and_stack(key, values, drawer(key))
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_cached_materialization_is_frozen(self):
        # The stacked entry is shared across queries: it must come back
        # read-only so a mutating program can never corrupt the records
        # a later query computes its release from.
        cache = BlockPlanCache(metrics=MetricsRegistry())
        values = np.arange(100, dtype=float).reshape(-1, 1)
        key = make_key()
        _, stacked = cache.plan_and_stack(key, values, drawer(key))
        assert stacked.flags.writeable is False
        with pytest.raises(ValueError):
            stacked[0, 0, 0] = 1e9
        _, again = cache.plan_and_stack(key, values, drawer(key))
        assert again.flags.writeable is False

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            BlockPlanCache(max_entries=0)
        with pytest.raises(ValueError):
            BlockPlanCache(max_bytes=0)

    def test_metrics_populated(self):
        registry = MetricsRegistry()
        cache = BlockPlanCache(metrics=registry)
        values = np.arange(100, dtype=float).reshape(-1, 1)
        key = make_key()
        cache.plan_and_stack(key, values, drawer(key))
        cache.plan_and_stack(key, values, drawer(key))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["plan_cache.misses"] == 1
        assert snapshot["counters"]["plan_cache.hits"] == 1
        assert snapshot["gauges"]["plan_cache.entries"] == 1
        assert snapshot["gauges"]["plan_cache.resident_mib"] > 0.0


class TestKeyPrivacyInvariant:
    def test_key_fields_are_public_parameters_only(self):
        """The key is the whole lookup identity — and holds no data.

        Every field is either registration identity, public geometry or
        the analyst-visible seed; there is deliberately no field that
        could hold a record value, and equality/hash derive only from
        those fields (frozen dataclass), so cache behavior is a function
        of public inputs.
        """
        fields = set(PlanKey.__dataclass_fields__)
        assert fields == {
            "dataset",
            "version",
            "num_records",
            "block_size",
            "resampling_factor",
            "seed",
            # Sharded plan protocol: the logical shard count is a public
            # plan parameter (the combined plan is a pure function of
            # seed and shards), and the shard index scopes worker-local
            # entries — both analyst-visible execution geometry, never
            # record-derived.
            "shards",
            "shard",
        }

    def test_same_public_parameters_same_entry_regardless_of_values(self):
        # Two different datasets' values with identical public geometry
        # produce the same key — the cache must be keyed, and therefore
        # versioned, at registration level, never content level.
        assert make_key() == make_key()
        assert hash(make_key()) == hash(make_key())
        assert make_key(version=1) != make_key(version=2)


class TestRuntimeIntegration:
    @staticmethod
    def _runtime(values, **kwargs):
        manager = DatasetManager()
        manager.register(
            "d",
            DataTable(values, column_names=("x",)),
            total_budget=100.0,
        )
        return GuptRuntime(manager, **kwargs)

    @staticmethod
    def _query(runtime, seed):
        return runtime.run(
            "d",
            Mean(),
            TightRange((0.0, 10.0)),
            epsilon=0.5,
            block_size=8,
            query_name="mean",
            rng=seed,
        ).scalar()

    def test_release_independent_of_cache_state(self):
        values = np.random.default_rng(5).uniform(0.0, 10.0, size=(96, 1))
        cached = self._runtime(values, rng=0)
        uncached = self._runtime(values, rng=0, plan_cache_size=0)
        # Same per-query seed: cold-cache, warm-cache and cache-disabled
        # runs release bit-identical values.
        cold = self._query(cached, seed=42)
        warm = self._query(cached, seed=42)
        off = self._query(uncached, seed=42)
        assert cold == warm == off
        assert cached.plan_cache is not None
        assert uncached.plan_cache is None

    def test_repeated_seeded_queries_hit(self):
        registry = MetricsRegistry()
        values = np.random.default_rng(5).uniform(0.0, 10.0, size=(96, 1))
        runtime = self._runtime(values, rng=0, metrics=registry)
        for _ in range(3):
            self._query(runtime, seed=42)
        counters = registry.snapshot()["counters"]
        assert counters["plan_cache.misses"] == 1
        assert counters["plan_cache.hits"] == 2

    def test_unseeded_queries_miss(self):
        # Fresh runtime randomness -> fresh plan seed -> distinct key:
        # the cache must never collapse genuinely independent plans.
        registry = MetricsRegistry()
        values = np.random.default_rng(5).uniform(0.0, 10.0, size=(96, 1))
        runtime = self._runtime(values, rng=0, metrics=registry)
        self._query(runtime, seed=None)
        self._query(runtime, seed=None)
        counters = registry.snapshot()["counters"]
        assert counters["plan_cache.misses"] == 2
        assert counters.get("plan_cache.hits", 0) == 0

    def test_reregistration_invalidates(self):
        registry = MetricsRegistry()
        manager = DatasetManager()
        rng = np.random.default_rng(5)
        manager.register(
            "d", DataTable(rng.uniform(0, 10, size=(96, 1))), total_budget=100.0
        )
        runtime = GuptRuntime(manager, rng=0, metrics=registry)
        self._query(runtime, seed=42)
        assert len(runtime.plan_cache) == 1
        first_version = manager.get("d").version

        manager.unregister("d")
        assert len(runtime.plan_cache) == 0  # eager eviction via the hook
        manager.register(
            "d", DataTable(rng.uniform(0, 10, size=(96, 1))), total_budget=100.0
        )
        assert manager.get("d").version > first_version

        # Same query seed against the new registration: the versioned
        # key makes this a miss, never a stale hit.
        self._query(runtime, seed=42)
        counters = registry.snapshot()["counters"]
        assert counters["plan_cache.misses"] == 2
        assert counters.get("plan_cache.hits", 0) == 0

    def test_grouped_plans_bypass_the_cache(self):
        registry = MetricsRegistry()
        manager = DatasetManager()
        rng = np.random.default_rng(5)
        labels = np.repeat(np.arange(12), 8).astype(float)
        table = DataTable(
            np.column_stack([rng.uniform(0, 10, size=96), labels]),
            column_names=("x", "user"),
        )
        manager.register("d", table, total_budget=100.0)
        runtime = GuptRuntime(manager, rng=0, metrics=registry)
        runtime.run(
            "d",
            Mean(),
            TightRange((0.0, 10.0)),
            epsilon=0.5,
            group_by="user",
            rng=42,
        )
        counters = registry.snapshot()["counters"]
        assert counters.get("plan_cache.misses", 0) == 0
        assert counters.get("plan_cache.hits", 0) == 0

    def test_conflicting_cache_kwargs_rejected(self):
        manager = DatasetManager()
        with pytest.raises(GuptError):
            GuptRuntime(manager, plan_cache=BlockPlanCache(), plan_cache_size=4)

    def test_close_clears_cache(self):
        values = np.random.default_rng(5).uniform(0.0, 10.0, size=(96, 1))
        runtime = self._runtime(values, rng=0)
        self._query(runtime, seed=42)
        assert len(runtime.plan_cache) == 1
        runtime.close()
        assert len(runtime.plan_cache) == 0

    def test_mutating_program_cannot_poison_the_cache(self):
        # Regression: the chamber fallback used to run programs on
        # zero-copy views into the shared cache entry, so an in-place
        # mutation survived into every later query with the same plan
        # key.  The frozen entry now forces a per-query copy: a program
        # that reads its block and then zeroes it releases the same
        # bits on the cold run, the warm-cache run and with no cache.
        class ReadThenZero:
            output_dimension = 1

            def __call__(self, block):
                out = float(np.mean(block))
                block[...] = 0.0
                return out

        values = np.random.default_rng(5).uniform(1.0, 10.0, size=(96, 1))
        cached = self._runtime(values, rng=0, backend="vectorized")
        uncached = self._runtime(
            values, rng=0, backend="vectorized", plan_cache_size=0
        )

        def query(runtime):
            return runtime.run(
                "d",
                ReadThenZero(),
                TightRange((0.0, 10.0)),
                epsilon=0.5,
                block_size=8,
                rng=42,
            ).scalar()

        cold = query(cached)
        warm = query(cached)
        off = query(uncached)
        assert cold == warm == off
        # The cached records themselves survived both runs unmutated.
        assert len(cached.plan_cache) == 1
        entry = next(iter(cached.plan_cache._entries.values()))
        assert entry.stacked.flags.writeable is False
        assert np.all(entry.stacked >= 1.0)  # never zeroed in place

    def test_close_detaches_cache_from_caller_owned_manager(self):
        manager = DatasetManager()
        values = np.arange(100, dtype=float).reshape(-1, 1)
        manager.register(
            "d", DataTable(values, column_names=("x",)), total_budget=100.0
        )
        runtime = GuptRuntime(manager, rng=0)
        cache = runtime.plan_cache
        runtime.close()
        # The caller-owned manager outlives the runtime: close() must
        # unhook the cache, or every dead runtime would stay pinned and
        # keep being invoked on each registration change.  A leaked
        # hook would evict the entry below on unregister.
        key = make_key(dataset="d")
        cache.plan_and_stack(key, values, drawer(key))
        manager.unregister("d")
        assert len(cache) == 1
