"""The noisy-answer cache: zero-ε replay of already-published releases.

A differentially private release is just bits once published —
post-processing is free — so answering the *identical* seeded query
again by replaying the stored release costs no additional budget.
These tests pin the three load-bearing properties:

1. **Bit-identity**: a cache hit returns exactly the original release
   (value and all metadata), and a runtime with the cache disabled
   produces the same bits — the cache check consumes no generator
   draws.
2. **Zero marginal ε, on the books**: a hit opens no reservation,
   leaves ``budget.spent`` untouched, and records an explicit 0.0
   replay entry in the ledger and a ``replay`` frame in the durable
   journal, so the audit trail shows the replay happened.
3. **Safety valves**: dataset re-registration evicts the answer cache
   *and* the block-plan cache together, and anything that would make
   replay unsound (no caller seed, estimated budgets, unpicklable
   programs) bypasses the cache entirely.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.accounting.journal import REPLAY, journal_path, scan
from repro.accounting.manager import DatasetManager
from repro.core.gupt import GuptRuntime
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean, Median
from repro.observability import MetricsRegistry
from repro.optimizer.answer_cache import AnswerCache, build_answer_key

SEED = 424242
QUERY_SEED = 7
EPSILON = 0.5
BLOCK_SIZE = 50
NUM_RECORDS = 1_000


def _values(num_records: int = NUM_RECORDS) -> np.ndarray:
    return np.random.default_rng(SEED).uniform(0.0, 100.0, size=(num_records, 1))


def _manager(metrics=None, state_dir=None) -> DatasetManager:
    manager = DatasetManager(metrics=metrics, state_dir=state_dir)
    manager.register(
        "data", DataTable(_values(), input_ranges=[(0.0, 100.0)]),
        total_budget=100.0,
    )
    return manager


def _run(runtime, *, program=None, rng=QUERY_SEED, epsilon=EPSILON):
    return runtime.run(
        "data",
        program if program is not None else Mean(),
        TightRange((0.0, 100.0)),
        epsilon=epsilon,
        block_size=BLOCK_SIZE,
        rng=rng,
    )


class TestReplayBitIdentity:
    def test_hit_replays_identical_bits(self):
        manager = _manager()
        with GuptRuntime(manager, rng=SEED, answer_cache_size=16) as runtime:
            first = _run(runtime)
            second = _run(runtime)
        assert not first.cached
        assert second.cached
        np.testing.assert_array_equal(first.value, second.value)
        assert first.epsilon_total == second.epsilon_total
        assert first.num_blocks == second.num_blocks
        assert first.output_ranges == second.output_ranges
        np.testing.assert_array_equal(first.noise_scales, second.noise_scales)

    def test_cache_check_consumes_no_draws(self):
        # The enabled-but-missing and disabled paths must release the
        # same bits: the cache probe happens before any generator use.
        with GuptRuntime(_manager(), rng=SEED, answer_cache_size=16) as cached:
            with_cache = _run(cached)
        with GuptRuntime(_manager(), rng=SEED) as plain:
            without_cache = _run(plain)
        np.testing.assert_array_equal(with_cache.value, without_cache.value)

    def test_replayed_value_is_read_only(self):
        with GuptRuntime(_manager(), rng=SEED, answer_cache_size=16) as runtime:
            _run(runtime)
            replayed = _run(runtime)
            with pytest.raises(ValueError):
                replayed.value[0] = 0.0
            # A poisoning attempt must not corrupt later hits.
            again = _run(runtime)
        np.testing.assert_array_equal(again.value, replayed.value)


class TestZeroEpsilonAccounting:
    def test_hit_charges_nothing(self):
        manager = _manager()
        registered = manager.get("data")
        with GuptRuntime(manager, rng=SEED, answer_cache_size=16) as runtime:
            _run(runtime)
            spent_after_first = registered.budget.spent
            _run(runtime)
            assert registered.budget.spent == spent_after_first

    def test_hit_records_zero_epsilon_ledger_entry(self):
        manager = _manager()
        registered = manager.get("data")
        with GuptRuntime(manager, rng=SEED, answer_cache_size=16) as runtime:
            _run(runtime)
            _run(runtime)
        entries = list(registered.ledger)
        assert len(entries) == 2
        assert entries[-1].epsilon == 0.0
        # Ledger-sum-equals-budget-spent invariant survives the replay.
        assert sum(e.epsilon for e in entries) == registered.budget.spent

    def test_hit_writes_replay_journal_frame_and_no_reservation(self, tmp_path):
        state_dir = str(tmp_path)
        manager = _manager(state_dir=state_dir)
        with GuptRuntime(manager, rng=SEED, answer_cache_size=16) as runtime:
            _run(runtime)
            frames_before = scan(journal_path(state_dir)).records
            _run(runtime)
            frames_after = scan(journal_path(state_dir)).records
        manager.close()
        new_frames = frames_after[len(frames_before):]
        assert [f["kind"] for f in new_frames] == [REPLAY]
        # Zero-ε frames omit the epsilon field entirely on the wire.
        assert new_frames[0].get("epsilon", 0.0) == 0.0
        assert new_frames[0]["dataset"] == "data"


class TestInvalidation:
    def test_reregistration_evicts_answer_and_plan_cache(self):
        manager = _manager()
        with GuptRuntime(manager, rng=SEED, answer_cache_size=16) as runtime:
            original = _run(runtime)
            assert len(runtime.answer_cache) == 1
            assert len(runtime.plan_cache) >= 1
            manager.unregister("data")
            assert len(runtime.answer_cache) == 0
            assert len(runtime.plan_cache) == 0
            manager.register(
                "data",
                DataTable(_values() + 1.0, input_ranges=[(0.0, 101.0)]),
                total_budget=100.0,
            )
            fresh = _run(runtime)
        # A version bump means the old release must not be replayed.
        assert not fresh.cached
        assert not np.array_equal(fresh.value, original.value)

    def test_version_is_part_of_the_key(self):
        manager = _manager()
        registered = manager.get("data")
        key_v1 = build_answer_key(
            dataset="data", version=registered.version, program=Mean(),
            range_strategy=TightRange((0.0, 100.0)), epsilon=EPSILON,
            output_dimension=1, block_size=BLOCK_SIZE, resampling_factor=1,
            group_by=None, seed=QUERY_SEED, shards=1,
        )
        key_v2 = build_answer_key(
            dataset="data", version=registered.version + 1, program=Mean(),
            range_strategy=TightRange((0.0, 100.0)), epsilon=EPSILON,
            output_dimension=1, block_size=BLOCK_SIZE, resampling_factor=1,
            group_by=None, seed=QUERY_SEED, shards=1,
        )
        assert key_v1 != key_v2


class TestCacheBypass:
    def test_unseeded_query_bypasses(self):
        with GuptRuntime(_manager(), rng=SEED, answer_cache_size=16) as runtime:
            first = _run(runtime, rng=None)
            second = _run(runtime, rng=None)
        assert not first.cached and not second.cached
        assert len(runtime.answer_cache) == 0
        # Unseeded releases draw fresh noise — they must differ.
        assert not np.array_equal(first.value, second.value)

    def test_different_seed_misses(self):
        with GuptRuntime(_manager(), rng=SEED, answer_cache_size=16) as runtime:
            first = _run(runtime, rng=QUERY_SEED)
            second = _run(runtime, rng=QUERY_SEED + 1)
        assert not second.cached
        assert not np.array_equal(first.value, second.value)

    def test_different_program_misses(self):
        with GuptRuntime(_manager(), rng=SEED, answer_cache_size=16) as runtime:
            _run(runtime, program=Mean())
            other = _run(runtime, program=Median())
        assert not other.cached

    def test_different_epsilon_misses(self):
        manager = _manager()
        registered = manager.get("data")
        with GuptRuntime(manager, rng=SEED, answer_cache_size=16) as runtime:
            _run(runtime, epsilon=EPSILON)
            other = _run(runtime, epsilon=EPSILON * 2)
        assert not other.cached
        assert registered.budget.spent == pytest.approx(EPSILON * 3)

    def test_unfingerprintable_program_is_uncacheable(self):
        # A closure over live, unpicklable state (a lock) has no stable
        # content identity; such programs must bypass the cache.
        lock = threading.Lock()

        def program(block, _lock=lock):
            return 0.0

        key = build_answer_key(
            dataset="data", version=1, program=program,
            range_strategy=TightRange((0.0, 100.0)), epsilon=EPSILON,
            output_dimension=1, block_size=BLOCK_SIZE, resampling_factor=1,
            group_by=None, seed=QUERY_SEED, shards=1,
        )
        assert key is None

    def test_redefined_function_body_misses(self):
        # pickle would serialize both of these by reference (identical
        # module + qualname) and replay the stale release; the content
        # digest must see the changed bytecode.  This is the notebook /
        # edited-module / long-lived-runtime scenario.
        def make(body: str):
            namespace = {"np": np}
            exec(
                f"def prog(block):\n    return {body}\n", namespace
            )
            fn = namespace["prog"]
            fn.__module__ = "analyst_notebook"
            return fn

        def key_for(program):
            return build_answer_key(
                dataset="data", version=1, program=program,
                range_strategy=TightRange((0.0, 100.0)), epsilon=EPSILON,
                output_dimension=1, block_size=BLOCK_SIZE,
                resampling_factor=1, group_by=None, seed=QUERY_SEED,
                shards=1,
            )

        mean_a = key_for(make("float(np.mean(block))"))
        mean_b = key_for(make("float(np.mean(block))"))
        maximum = key_for(make("float(np.max(block))"))
        assert mean_a is not None
        # Same logic → same identity (the cache still works) …
        assert mean_a == mean_b
        # … different body under the same name → different identity.
        assert mean_a != maximum

    def test_closure_value_is_part_of_identity(self):
        def make(offset: float):
            def prog(block):
                return float(np.mean(block)) + offset
            return prog

        def key_for(program):
            return build_answer_key(
                dataset="data", version=1, program=program,
                range_strategy=TightRange((0.0, 100.0)), epsilon=EPSILON,
                output_dimension=1, block_size=BLOCK_SIZE,
                resampling_factor=1, group_by=None, seed=QUERY_SEED,
                shards=1,
            )

        assert key_for(make(1.0)) == key_for(make(1.0))
        assert key_for(make(1.0)) != key_for(make(2.0))

    def test_referenced_global_value_is_part_of_identity(self):
        # Same bytecode, but the module global the code reads differs:
        # executing the two programs produces different outputs, so
        # their identities must differ too.
        def make(scale: float):
            namespace = {"np": np, "SCALE": scale}
            exec(
                "def prog(block):\n"
                "    return float(np.mean(block)) * SCALE\n",
                namespace,
            )
            return namespace["prog"]

        def key_for(program):
            return build_answer_key(
                dataset="data", version=1, program=program,
                range_strategy=TightRange((0.0, 100.0)), epsilon=EPSILON,
                output_dimension=1, block_size=BLOCK_SIZE,
                resampling_factor=1, group_by=None, seed=QUERY_SEED,
                shards=1,
            )

        assert key_for(make(1.0)) == key_for(make(1.0))
        assert key_for(make(1.0)) != key_for(make(3.0))

    def test_disabled_by_default(self):
        with GuptRuntime(_manager(), rng=SEED) as runtime:
            assert runtime.answer_cache is None
            first = _run(runtime)
            second = _run(runtime)
        assert not second.cached
        # Identical seeded query without the cache re-releases the same
        # bits by the one-draw protocol — but pays again.
        np.testing.assert_array_equal(first.value, second.value)


class TestLruAndMetrics:
    def test_lru_eviction(self):
        registry = MetricsRegistry()
        cache = AnswerCache(max_entries=2, metrics=registry)
        with GuptRuntime(
            _manager(), rng=SEED, answer_cache=cache
        ) as runtime:
            _run(runtime, rng=1)
            _run(runtime, rng=2)
            _run(runtime, rng=1)      # refresh 1 in LRU order
            _run(runtime, rng=3)      # evicts 2
            assert len(cache) == 2
            assert _run(runtime, rng=1).cached
            assert not _run(runtime, rng=2).cached
        counters = registry.snapshot()["counters"]
        assert counters["optimizer.cache_evictions"] >= 1.0

    def test_hit_miss_counters(self):
        registry = MetricsRegistry()
        manager = _manager(metrics=registry)
        with GuptRuntime(
            manager, rng=SEED, metrics=registry, answer_cache_size=16
        ) as runtime:
            _run(runtime)
            _run(runtime)
        counters = registry.snapshot()["counters"]
        assert counters['optimizer.cache_misses{dataset="data"}'] == 1.0
        assert counters['optimizer.cache_hits{dataset="data"}'] == 1.0
        assert counters['optimizer.replays{dataset="data"}'] == 1.0
        assert counters['budget.replays{dataset="data"}'] == 1.0

    def test_cache_size_and_instance_are_mutually_exclusive(self):
        cache = AnswerCache(max_entries=4)
        with pytest.raises(Exception):
            GuptRuntime(
                _manager(), rng=SEED,
                answer_cache=cache, answer_cache_size=8,
            )
