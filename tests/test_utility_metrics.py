"""Unit tests for the utility metrics."""

import numpy as np
import pytest

from repro.audit.utility import (
    cdf_points,
    normalized_rmse,
    relative_error,
    rmse,
    within_accuracy,
)


class TestRmse:
    def test_zero_for_exact(self):
        assert rmse([5.0, 5.0], 5.0) == 0.0

    def test_known_value(self):
        assert rmse([4.0, 6.0], 5.0) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], 1.0)

    def test_normalized(self):
        assert normalized_rmse([4.0, 6.0], 5.0) == pytest.approx(0.2)

    def test_normalized_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            normalized_rmse([1.0], 0.0)


class TestRelativeError:
    def test_value(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_symmetric_in_sign(self):
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestWithinAccuracy:
    def test_inside(self):
        assert within_accuracy(95.0, 100.0, rho=0.9)

    def test_boundary(self):
        assert within_accuracy(90.0, 100.0, rho=0.9)

    def test_outside(self):
        assert not within_accuracy(85.0, 100.0, rho=0.9)

    @pytest.mark.parametrize("rho", [0.0, 1.0])
    def test_invalid_rho(self, rho):
        with pytest.raises(ValueError):
            within_accuracy(1.0, 1.0, rho=rho)


class TestCdf:
    def test_sorted_values_and_fractions(self):
        values, fractions = cdf_points([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert fractions.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])
