"""Tests for the empirical DP verifier — including a negative control."""

import numpy as np
import pytest

from repro.audit.dp_verifier import empirical_epsilon, neighboring
from repro.mechanisms.laplace import laplace_noise


class TestNeighboring:
    def test_differs_in_exactly_one_record(self):
        data = np.arange(10.0)
        neighbor = neighboring(data, index=3, replacement=99.0)
        diffs = data != neighbor
        assert diffs.sum() == 1
        assert neighbor[3] == 99.0

    def test_default_replacement_is_extreme(self):
        data = np.arange(10.0)
        neighbor = neighboring(data, index=0, rng=0)
        assert neighbor[0] in (0.0, 9.0)

    def test_2d_supported(self):
        data = np.arange(12.0).reshape(4, 3)
        neighbor = neighboring(data, index=1, replacement=[0.0, 0.0, 0.0])
        assert np.array_equal(neighbor[1], [0.0, 0.0, 0.0])
        assert np.array_equal(neighbor[0], data[0])


class TestEmpiricalEpsilon:
    def test_laplace_mechanism_bounded_by_epsilon(self):
        rng = np.random.default_rng(0)
        epsilon = 1.0

        def mechanism(data):
            # Mean with sensitivity 1/n over data clamped to [0, 10].
            clamped = np.clip(data, 0, 10)
            return clamped.mean() + laplace_noise(10.0 / (epsilon * len(data)), rng=rng)

        data = rng.uniform(0, 10, size=100)
        neighbor = neighboring(data, replacement=10.0)
        measured = empirical_epsilon(mechanism, data, neighbor, trials=3000)
        # Sampling error inflates the estimate; allow generous headroom
        # but far below what a broken mechanism produces.
        assert measured < 2.5 * epsilon

    def test_flags_broken_mechanism(self):
        # Negative control: noise calibrated 100x too small must be
        # detected as grossly non-private.
        rng = np.random.default_rng(1)

        def broken(data):
            clamped = np.clip(data, 0, 10)
            return clamped.mean() + laplace_noise(0.001, rng=rng)

        data = rng.uniform(0, 10, size=100)
        neighbor = neighboring(data, replacement=10.0)
        measured = empirical_epsilon(broken, data, neighbor, trials=1500)
        assert measured > 3.0

    def test_constant_mechanism_is_perfectly_private(self):
        measured = empirical_epsilon(
            lambda data: 42.0, np.zeros(10), np.ones(10), trials=100
        )
        assert measured == 0.0

    def test_too_few_trials_rejected(self):
        with pytest.raises(ValueError):
            empirical_epsilon(lambda d: 0.0, np.zeros(5), np.zeros(5), trials=5)

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError):
            empirical_epsilon(lambda d: 0.0, np.zeros(5), np.zeros(5), bins=1)
