"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    CENSUS_TRUE_MEAN_AGE,
    census_adult,
    gaussian_table,
    internet_ads,
    life_sciences,
)


class TestLifeSciences:
    def test_default_shape_matches_paper(self):
        data = life_sciences()
        assert data.features.num_records == 26733
        assert data.features.num_dimensions == 10
        assert data.labels.shape == (26733,)

    def test_labels_binary(self):
        data = life_sciences(num_records=500)
        assert set(np.unique(data.labels)) <= {0, 1}

    def test_deterministic(self):
        a = life_sciences(num_records=200)
        b = life_sciences(num_records=200)
        assert np.array_equal(a.features.values, b.features.values)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = life_sciences(num_records=200, rng=1)
        b = life_sciences(num_records=200, rng=2)
        assert not np.array_equal(a.features.values, b.features.values)

    def test_pca_like_variance_decay(self):
        data = life_sciences(num_records=5000)
        variances = data.features.values.var(axis=0)
        # First component should have noticeably more variance than last.
        assert variances[0] > 2 * variances[-1]

    def test_classes_roughly_balanced(self):
        data = life_sciences(num_records=5000)
        assert 0.25 < data.labels.mean() < 0.75

    def test_as_table_packs_label_last(self):
        data = life_sciences(num_records=100)
        packed = data.as_table()
        assert packed.num_dimensions == 11
        assert packed.column_names[-1] == "label"
        assert np.array_equal(packed.values[:, -1], data.labels.astype(float))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            life_sciences(num_records=0)


class TestCensusAdult:
    def test_default_shape_matches_paper(self):
        table = census_adult()
        assert table.num_records == 32561
        assert table.num_dimensions == 1

    def test_mean_matches_papers_value(self):
        table = census_adult()
        assert float(table.values.mean()) == pytest.approx(
            CENSUS_TRUE_MEAN_AGE, abs=0.1
        )

    def test_ages_plausible(self):
        table = census_adult()
        assert table.values.min() >= 17.0
        assert table.values.max() <= 90.0

    def test_input_range_declared(self):
        assert census_adult(num_records=100).input_ranges == ((0.0, 150.0),)

    def test_deterministic(self):
        assert np.array_equal(census_adult().values, census_adult().values)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            census_adult(num_records=-1)


class TestInternetAds:
    def test_shape(self):
        table = internet_ads()
        assert table.num_records == 2359
        assert table.num_dimensions == 1

    def test_right_skew(self):
        # Figure 9 depends on mean > median (skewed aspect ratios).
        values = internet_ads().values.ravel()
        assert values.mean() > 1.2 * np.median(values)

    def test_within_declared_range(self):
        table = internet_ads()
        lo, hi = table.input_ranges[0]
        assert table.values.min() >= lo
        assert table.values.max() <= hi

    def test_deterministic(self):
        assert np.array_equal(internet_ads().values, internet_ads().values)


class TestGaussianTable:
    def test_shape(self):
        table = gaussian_table(100, 3, rng=0)
        assert table.values.shape == (100, 3)

    def test_moments(self):
        table = gaussian_table(50_000, 1, mean=5.0, std=2.0, rng=0)
        assert table.values.mean() == pytest.approx(5.0, abs=0.05)
        assert table.values.std() == pytest.approx(2.0, abs=0.05)
