"""Wire-protocol conformance suite for the shard-node transport.

The frames in :data:`GOLDEN_FRAMES` are pinned at the *byte* level: each
entry records the exact hex a frame serialized to when the protocol was
frozen at v2 (v1 plus the mutual-authentication handshake and curator
manifests).  If any of these tests fail after a change to
``repro.runtime.remote.wire``, the change is a breaking protocol change
and requires bumping ``REMOTE_PROTOCOL_VERSION`` — not updating the
goldens in place.

Alongside the goldens, this suite pins the failure half of the
contract: version-mismatch rejection, torn/truncated-frame rejection,
CRC corruption detection, the handshake behaviour of a live in-thread
:class:`~repro.runtime.remote.node.ShardNodeServer`, and the
authenticated handshake (challenge–response transcripts, bad-secret
refusal before any non-handshake frame).
"""

from __future__ import annotations

import socket
import struct
import threading
import time
import zlib

import numpy as np
import pytest

from repro.runtime.remote import wire
from repro.runtime.remote.node import ShardNodeServer
from repro.runtime.shard import ShardQuerySpec

# ----------------------------------------------------------------------
# Pinned protocol constants
# ----------------------------------------------------------------------

#: Kind numbers are wire format.  Renumbering is a protocol break.
PINNED_KINDS = {
    "hello": 1,
    "welcome": 2,
    "segment": 3,
    "plan": 4,
    "execute": 5,
    "partial": 6,
    "partial-missing": 7,
    "query-done": 8,
    "ping": 9,
    "pong": 10,
    "shutdown": 11,
    "bye": 12,
    "error": 13,
}

#: ``(kind, header, body, hex)`` — one representative frame per kind,
#: serialized by v2 of the protocol.  The hex is the full frame
#: including magic, prefix, canonical-JSON header, body, and CRC.
GOLDEN_FRAMES = {
    "hello": (
        wire.HELLO,
        {"protocol": 2},
        b"",
        "47534e31020001000e00000000000000000000007b2270726f746f636f6c223a"
        "327deeb9a39c",
    ),
    "welcome": (
        wire.WELCOME,
        {"protocol": 2, "shards_held": 0, "manifests": [], "authenticated": False},
        b"",
        "47534e31020002004300000000000000000000007b2261757468656e74696361"
        "746564223a66616c73652c226d616e696665737473223a5b5d2c2270726f746f"
        "636f6c223a322c227368617264735f68656c64223a307de0c85ae6",
    ),
    "segment": (
        wire.SEGMENT,
        {"dataset": "data", "version": 1, "shard": 0, "shape": [2, 1]},
        b"\x00\x00\x00\x00\x00\x00\xf8?\x00\x00\x00\x00\x00\x00\x04@",
        "47534e31020003003600000010000000000000007b2264617461736574223a22"
        "64617461222c227368617065223a5b322c315d2c227368617264223a302c2276"
        "657273696f6e223a317d000000000000f83f00000000000004400feaf388",
    ),
    "plan": (
        wire.PLAN,
        {
            "dataset": "data",
            "version": 1,
            "num_records": 100,
            "block_size": 10,
            "resampling_factor": 1,
            "plan_seed": 424242,
            "shards": 2,
            "output_dimension": 1,
            "fallback": [0.0],
            "clamp_lo": [0.0],
            "clamp_hi": [100.0],
            "qid": 1,
        },
        b"",
        "47534e3102000400c600000000000000000000007b22626c6f636b5f73697a65"
        "223a31302c22636c616d705f6869223a5b3130302e305d2c22636c616d705f6c"
        "6f223a5b302e305d2c2264617461736574223a2264617461222c2266616c6c62"
        "61636b223a5b302e305d2c226e756d5f7265636f726473223a3130302c226f75"
        "747075745f64696d656e73696f6e223a312c22706c616e5f73656564223a3432"
        "343234322c22716964223a312c22726573616d706c696e675f666163746f7222"
        "3a312c22736861726473223a322c2276657273696f6e223a317d95414116",
    ),
    "execute": (
        wire.EXECUTE,
        {"qid": 1, "shards": [0, 1], "origin": 0},
        b"\x80\x04N.",
        "47534e31020005002300000004000000000000007b226f726967696e223a302c"
        "22716964223a312c22736861726473223a5b302c315d7d80044e2e999f4192",
    ),
    "partial": (
        wire.PARTIAL,
        {"qid": 1, "shard": 0, "shape": [2, 1], "elapsed": 0.0},
        b"\x00\x00\x00\x00\x00\x00\x08@\x00\x00\x00\x00\x00\x00\x10@\x01\x01",
        "47534e31020006002f00000012000000000000007b22656c6170736564223a30"
        "2e302c22716964223a312c227368617065223a5b322c315d2c22736861726422"
        "3a307d0000000000000840000000000000104001011d1d2a83",
    ),
    "partial-missing": (
        wire.PARTIAL_MISSING,
        {"qid": 1, "shard": 1, "reason": "no_segment"},
        b"",
        "47534e31020007002900000000000000000000007b22716964223a312c227265"
        "61736f6e223a226e6f5f7365676d656e74222c227368617264223a317d1d53fd"
        "15",
    ),
    "query-done": (
        wire.QUERY_DONE,
        {"qid": 1},
        b"",
        "47534e31020008000900000000000000000000007b22716964223a317d7f80e5"
        "c8",
    ),
    "ping": (
        wire.PING,
        {"token": 7},
        b"",
        "47534e31020009000b00000000000000000000007b22746f6b656e223a377d9b"
        "de6f60",
    ),
    "pong": (
        wire.PONG,
        {"token": 7},
        b"",
        "47534e3102000a000b00000000000000000000007b22746f6b656e223a377dc8"
        "688255",
    ),
    "shutdown": (
        wire.SHUTDOWN,
        {"halt": True},
        b"",
        "47534e3102000b000d00000000000000000000007b2268616c74223a74727565"
        "7d72ac9b75",
    ),
    "bye": (
        wire.BYE,
        {},
        b"",
        "47534e3102000c000200000000000000000000007b7d171efcc6",
    ),
    "error": (
        wire.ERROR,
        {"code": "protocol_error", "error": "expected hello"},
        b"",
        "47534e3102000d003200000000000000000000007b22636f6465223a2270726f"
        "746f636f6c5f6572726f72222c226572726f72223a2265787065637465642068"
        "656c6c6f227db2ce8c32",
    ),
}

#: Fixed handshake inputs for the authentication goldens below: real
#: runs draw both nonces fresh per connection; pinning them here pins
#: the proof *algorithm* (HMAC-SHA256 over ``role|challenge|nonce``).
AUTH_SECRET = "open-sesame"
COORDINATOR_NONCE = "aa" * 16
NODE_NONCE = "bb" * 16
NODE_PROOF = "b1171f1e7c37bd203b49680385435d97c93f7475c8a94d170939eca35f00b6f7"
COORDINATOR_PROOF = (
    "93c4b67f74299b274e6ebfdb88c2e4bb87c6a9818b27f3095173fc7193e5c694"
)

#: The four authenticated-handshake messages, in order, with the fixed
#: nonces above and one curated manifest: coordinator HELLO with nonce,
#: node challenge WELCOME (the node proves first), coordinator proof
#: HELLO, final WELCOME carrying the manifests.
GOLDEN_AUTH_HANDSHAKE = {
    "auth-hello": (
        wire.HELLO,
        {"protocol": 2, "nonce": COORDINATOR_NONCE},
        "47534e31020001003900000000000000000000007b226e6f6e6365223a226161"
        "616161616161616161616161616161616161616161616161616161616161222c"
        "2270726f746f636f6c223a327d8ceae450",
    ),
    "auth-challenge": (
        wire.WELCOME,
        {"protocol": 2, "challenge": NODE_NONCE, "proof": NODE_PROOF},
        "47534e31020002008800000000000000000000007b226368616c6c656e676522"
        "3a22626262626262626262626262626262626262626262626262626262626262"
        "6262222c2270726f6f66223a2262313137316631653763333762643230336234"
        "3936383033383534333564393763393366373437356338613934643137303933"
        "39656361333566303062366637222c2270726f746f636f6c223a327de3cef9b7",
    ),
    "auth-reply": (
        wire.HELLO,
        {"protocol": 2, "proof": COORDINATOR_PROOF},
        "47534e31020001005900000000000000000000007b2270726f6f66223a223933"
        "6334623637663734323939623237346536656266646238386332653462623837"
        "633661393831386232376633303935313733666337313933653563363934222c"
        "2270726f746f636f6c223a327d37fb144c",
    ),
    "auth-welcome": (
        wire.WELCOME,
        {
            "protocol": 2,
            "shards_held": 0,
            "manifests": [
                {
                    "dataset": "data",
                    "rows": 600,
                    "columns": 1,
                    "digest": "e9a03a93a1541a1b",
                }
            ],
            "authenticated": True,
        },
        "47534e31020002008700000000000000000000007b2261757468656e74696361"
        "746564223a747275652c226d616e696665737473223a5b7b22636f6c756d6e73"
        "223a312c2264617461736574223a2264617461222c22646967657374223a2265"
        "396130336139336131353431613162222c22726f7773223a3630307d5d2c2270"
        "726f746f636f6c223a322c227368617264735f68656c64223a307d17e0e393",
    ),
}


def _spec(**overrides) -> ShardQuerySpec:
    fields = dict(
        dataset="data",
        version=1,
        num_records=100,
        block_size=10,
        resampling_factor=1,
        plan_seed=424242,
        shards=2,
        output_dimension=1,
        fallback=(0.0,),
        clamp_lo=(0.0,),
        clamp_hi=(100.0,),
    )
    fields.update(overrides)
    return ShardQuerySpec(**fields)


class TestPinnedConstants:
    def test_kind_numbers_are_pinned(self):
        for name, number in PINNED_KINDS.items():
            assert wire.KIND_NAMES[number] == name

    def test_no_unpinned_kinds_exist(self):
        assert sorted(wire.KIND_NAMES) == sorted(PINNED_KINDS.values())

    def test_magic_and_version(self):
        assert wire.REMOTE_MAGIC == b"GSN1"
        assert wire.REMOTE_PROTOCOL_VERSION == 2

    def test_node_to_coordinator_allowlist(self):
        # The privacy boundary: the untrusted return channel may only
        # carry these kinds.  Raw rows (SEGMENT) and executable plans
        # must never be legal node -> coordinator traffic.
        assert wire.NODE_TO_COORDINATOR_KINDS == frozenset(
            {
                wire.WELCOME,
                wire.PARTIAL,
                wire.PARTIAL_MISSING,
                wire.QUERY_DONE,
                wire.PONG,
                wire.BYE,
                wire.ERROR,
            }
        )
        assert wire.SEGMENT not in wire.NODE_TO_COORDINATOR_KINDS
        assert wire.PLAN not in wire.NODE_TO_COORDINATOR_KINDS
        assert wire.EXECUTE not in wire.NODE_TO_COORDINATOR_KINDS
        assert wire.HELLO not in wire.NODE_TO_COORDINATOR_KINDS


class TestGoldenFrames:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_encode_matches_golden(self, name):
        kind, header, body, golden = GOLDEN_FRAMES[name]
        assert wire.encode_frame(kind, header, body).hex() == golden

    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_decode_golden_round_trips(self, name):
        kind, header, body, golden = GOLDEN_FRAMES[name]
        frame = wire.decode_frame(bytes.fromhex(golden))
        assert frame.kind == kind
        assert dict(frame.header) == header
        assert frame.body == body
        assert frame.kind_name == name

    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_socket_round_trip(self, name):
        kind, header, body, golden = GOLDEN_FRAMES[name]
        left, right = socket.socketpair()
        try:
            wire.send_frame(left, kind, header, body)
            frame = wire.read_frame(right, timeout=5.0)
        finally:
            left.close()
            right.close()
        assert frame.kind == kind
        assert dict(frame.header) == header
        assert frame.body == body

    def test_header_encoding_is_canonical(self):
        # Key order in the input must not change the bytes — this is
        # what makes byte-level goldens possible at all.
        a = wire.encode_frame(wire.PING, {"token": 7, "extra": 1})
        b = wire.encode_frame(wire.PING, {"extra": 1, "token": 7})
        assert a == b

    def test_nan_headers_are_rejected_at_encode_time(self):
        with pytest.raises(ValueError):
            wire.encode_frame(wire.PARTIAL, {"elapsed": float("nan")})


class TestAuthGoldens:
    def test_proofs_are_pinned(self):
        assert (
            wire.auth_proof(
                AUTH_SECRET, wire.AUTH_ROLE_NODE, COORDINATOR_NONCE, NODE_NONCE
            )
            == NODE_PROOF
        )
        assert (
            wire.auth_proof(
                AUTH_SECRET, wire.AUTH_ROLE_COORDINATOR, NODE_NONCE, COORDINATOR_NONCE
            )
            == COORDINATOR_PROOF
        )

    def test_roles_are_bound_into_proofs(self):
        # A captured node proof replayed back as a coordinator proof
        # must not verify: the role string inside the HMAC input breaks
        # reflection even when an attacker controls both nonces.
        assert not wire.verify_proof(
            AUTH_SECRET,
            wire.AUTH_ROLE_COORDINATOR,
            COORDINATOR_NONCE,
            NODE_NONCE,
            NODE_PROOF,
        )

    def test_verify_rejects_wrong_and_non_string_proofs(self):
        assert wire.verify_proof(
            AUTH_SECRET, wire.AUTH_ROLE_NODE, COORDINATOR_NONCE, NODE_NONCE, NODE_PROOF
        )
        for bogus in (None, 7, b"proof", [NODE_PROOF], NODE_PROOF[:-1] + "0"):
            assert not wire.verify_proof(
                AUTH_SECRET,
                wire.AUTH_ROLE_NODE,
                COORDINATOR_NONCE,
                NODE_NONCE,
                bogus,
            )

    def test_manifest_digest_is_pinned(self):
        assert wire.manifest_entry("data", 600, 1) == {
            "dataset": "data",
            "rows": 600,
            "columns": 1,
            "digest": "e9a03a93a1541a1b",
        }
        assert wire.dataset_digest("data", 600, 1) != wire.dataset_digest(
            "data", 601, 1
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN_AUTH_HANDSHAKE))
    def test_handshake_frames_encode_to_golden(self, name):
        kind, header, golden = GOLDEN_AUTH_HANDSHAKE[name]
        assert wire.encode_frame(kind, header).hex() == golden

    @pytest.mark.parametrize("name", sorted(GOLDEN_AUTH_HANDSHAKE))
    def test_handshake_goldens_round_trip(self, name):
        kind, header, golden = GOLDEN_AUTH_HANDSHAKE[name]
        frame = wire.decode_frame(bytes.fromhex(golden))
        assert frame.kind == kind
        assert dict(frame.header) == header


def _tamper_version(data: bytes, version: int) -> bytes:
    """Rewrite the version field and re-sign the CRC.

    A peer from a different build writes well-formed frames with valid
    checksums — the version check must fire on its own, not ride on a
    CRC failure.
    """
    prefix_off = len(wire.REMOTE_MAGIC)
    body = bytearray(data)
    struct.pack_into("<H", body, prefix_off, version)
    checked = bytes(body[prefix_off:-4])
    struct.pack_into("<I", body, len(body) - 4, zlib.crc32(checked))
    return bytes(body)


class TestRejection:
    GOLDEN = bytes.fromhex(GOLDEN_FRAMES["segment"][3])

    def test_version_mismatch_decode(self):
        with pytest.raises(wire.VersionMismatch) as excinfo:
            wire.decode_frame(_tamper_version(self.GOLDEN, 3))
        assert excinfo.value.theirs == 3

    def test_version_mismatch_socket(self):
        left, right = socket.socketpair()
        try:
            left.sendall(_tamper_version(self.GOLDEN, 99))
            with pytest.raises(wire.VersionMismatch) as excinfo:
                wire.read_frame(right, timeout=5.0)
        finally:
            left.close()
            right.close()
        assert excinfo.value.theirs == 99

    @pytest.mark.parametrize("cut", [0, 1, 4, 8, 15, 16, 30, -1])
    def test_truncated_prefixes_decode(self, cut):
        torn = self.GOLDEN[: cut if cut >= 0 else len(self.GOLDEN) - 1]
        with pytest.raises(wire.TruncatedFrame):
            wire.decode_frame(torn)

    @pytest.mark.parametrize("cut", [1, 4, 8, 15, 16, 30, -1])
    def test_torn_stream_socket(self, cut):
        # A peer that writes part of a frame and closes the connection
        # must produce TruncatedFrame, never a partial message.
        left, right = socket.socketpair()
        try:
            left.sendall(self.GOLDEN[: cut if cut >= 0 else len(self.GOLDEN) - 1])
            left.close()
            with pytest.raises(wire.TruncatedFrame):
                wire.read_frame(right, timeout=5.0)
        finally:
            right.close()

    def test_stalled_stream_times_out_as_truncated(self):
        left, right = socket.socketpair()
        try:
            left.sendall(self.GOLDEN[:10])  # then stall, never close
            with pytest.raises(wire.TruncatedFrame):
                wire.read_frame(right, timeout=0.1)
        finally:
            left.close()
            right.close()

    def test_crc_corruption_every_byte(self):
        # Flipping any single byte after the magic must be detected.
        # (Bytes 4-5 are the version field — those raise
        # VersionMismatch, which is also a FrameError rejection.)
        for i in range(4, len(self.GOLDEN)):
            corrupted = bytearray(self.GOLDEN)
            corrupted[i] ^= 0xFF
            with pytest.raises(wire.FrameError):
                wire.decode_frame(bytes(corrupted))

    def test_bad_magic(self):
        with pytest.raises(wire.CorruptFrame):
            wire.decode_frame(b"XXXX" + self.GOLDEN[4:])

    def test_insane_header_length(self):
        body = bytearray(self.GOLDEN)
        struct.pack_into("<I", body, 8, wire.MAX_HEADER_BYTES + 1)
        with pytest.raises(wire.CorruptFrame):
            wire.decode_frame(bytes(body))

    def test_insane_body_length(self):
        body = bytearray(self.GOLDEN)
        struct.pack_into("<Q", body, 12, wire.MAX_BODY_BYTES + 1)
        with pytest.raises(wire.CorruptFrame):
            wire.decode_frame(bytes(body))

    def test_non_object_header(self):
        header_bytes = b"[1,2]"
        prefix = struct.pack(
            "<HHIQ", wire.REMOTE_PROTOCOL_VERSION, wire.PING, len(header_bytes), 0
        )
        checked = prefix + header_bytes
        data = wire.REMOTE_MAGIC + checked + struct.pack("<I", zlib.crc32(checked))
        with pytest.raises(wire.CorruptFrame):
            wire.decode_frame(data)

    def test_unparseable_header(self):
        header_bytes = b"{not json"
        prefix = struct.pack(
            "<HHIQ", wire.REMOTE_PROTOCOL_VERSION, wire.PING, len(header_bytes), 0
        )
        checked = prefix + header_bytes
        data = wire.REMOTE_MAGIC + checked + struct.pack("<I", zlib.crc32(checked))
        with pytest.raises(wire.CorruptFrame):
            wire.decode_frame(data)


class TestPayloadHelpers:
    def test_array_round_trip(self):
        values = np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0
        header, body = wire.array_to_body(values)
        restored = wire.body_to_array(header, body)
        assert restored.dtype == np.float64
        np.testing.assert_array_equal(restored, values)

    def test_array_dtype_is_pinned_little_endian(self):
        _, body = wire.array_to_body(np.array([[1.0]], dtype=">f8"))
        assert body == struct.pack("<d", 1.0)

    def test_array_body_length_mismatch(self):
        header, body = wire.array_to_body(np.zeros((2, 2)))
        with pytest.raises(wire.CorruptFrame):
            wire.body_to_array(header, body[:-1])

    def test_mask_round_trip(self):
        mask = np.array([True, False, True, True])
        raw = wire.mask_to_bytes(mask)
        assert raw == b"\x01\x00\x01\x01"
        np.testing.assert_array_equal(wire.bytes_to_mask(raw, 4), mask)

    def test_mask_length_mismatch(self):
        with pytest.raises(wire.CorruptFrame):
            wire.bytes_to_mask(b"\x01\x00", 3)

    def test_spec_round_trip(self):
        spec = _spec()
        assert wire.header_to_spec(wire.spec_to_header(spec)) == spec

    def test_spec_round_trip_no_clamp(self):
        spec = _spec(clamp_lo=None, clamp_hi=None)
        assert wire.header_to_spec(wire.spec_to_header(spec)) == spec

    def test_malformed_spec_is_corrupt_frame(self):
        header = wire.spec_to_header(_spec())
        del header["plan_seed"]
        with pytest.raises(wire.CorruptFrame):
            wire.header_to_spec(header)


# ----------------------------------------------------------------------
# Live handshake against an in-thread node
# ----------------------------------------------------------------------
@pytest.fixture()
def node():
    server = ShardNodeServer(host="127.0.0.1", port=0)
    host, port = server.start()
    yield host, port
    server.stop()


def _dial(address) -> socket.socket:
    sock = socket.create_connection(address, timeout=5.0)
    wire.send_frame(sock, wire.HELLO, {"protocol": wire.REMOTE_PROTOCOL_VERSION})
    frame = wire.read_frame(sock, timeout=5.0)
    assert frame.kind == wire.WELCOME
    return sock


class TestLiveHandshake:
    def test_hello_welcome(self, node):
        sock = _dial(node)
        sock.close()

    def test_wrong_version_hello_is_refused(self, node):
        sock = socket.create_connection(node, timeout=5.0)
        try:
            wire.send_frame(sock, wire.HELLO, {"protocol": 999})
            frame = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert frame.kind == wire.ERROR
        assert frame.header["code"] == "version_mismatch"

    def test_non_hello_first_frame_is_refused(self, node):
        sock = socket.create_connection(node, timeout=5.0)
        try:
            wire.send_frame(sock, wire.PING, {"token": 1})
            frame = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert frame.kind == wire.ERROR

    def test_ping_pong_echoes_token(self, node):
        sock = _dial(node)
        try:
            wire.send_frame(sock, wire.PING, {"token": 42})
            frame = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert frame.kind == wire.PONG
        assert frame.header["token"] == 42

    def test_shutdown_bye(self, node):
        sock = _dial(node)
        try:
            wire.send_frame(sock, wire.SHUTDOWN, {"halt": False})
            frame = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert frame.kind == wire.BYE

    def test_execute_without_plan_reports_missing(self, node):
        sock = _dial(node)
        try:
            wire.send_frame(sock, wire.EXECUTE, {"qid": 5, "shards": [0]}, b"")
            missing = wire.read_frame(sock, timeout=5.0)
            done = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert missing.kind == wire.PARTIAL_MISSING
        assert missing.header["reason"] == "no_plan"
        assert done.kind == wire.QUERY_DONE
        assert done.header["qid"] == 5

    def test_full_query_cycle(self, node):
        import pickle

        from repro.estimators.statistics import Mean

        rng = np.random.default_rng(13)
        values = rng.uniform(0.0, 100.0, size=(100, 1))
        spec = _spec()
        from repro.core.blocks import shard_offsets

        bounds = shard_offsets(spec.num_records, spec.shards)
        sock = _dial(node)
        try:
            for shard in range(spec.shards):
                lo, hi = bounds[shard], bounds[shard + 1]
                header, body = wire.array_to_body(values[lo:hi])
                header.update(
                    {"dataset": spec.dataset, "version": spec.version, "shard": shard}
                )
                wire.send_frame(sock, wire.SEGMENT, header, body)
            plan_header = wire.spec_to_header(spec)
            plan_header["qid"] = 9
            wire.send_frame(sock, wire.PLAN, plan_header)
            wire.send_frame(
                sock,
                wire.EXECUTE,
                {"qid": 9, "shards": list(range(spec.shards))},
                pickle.dumps(Mean()),
            )
            partials = {}
            while True:
                frame = wire.read_frame(sock, timeout=10.0)
                if frame.kind == wire.QUERY_DONE:
                    break
                assert frame.kind == wire.PARTIAL
                matrix_len = (
                    int(np.prod(frame.header["shape"], dtype=np.int64)) * 8
                )
                matrix = wire.body_to_array(frame.header, frame.body[:matrix_len])
                mask = wire.bytes_to_mask(
                    frame.body[matrix_len:], frame.header["shape"][0]
                )
                partials[frame.header["shard"]] = (matrix, mask)
        finally:
            sock.close()
        assert sorted(partials) == [0, 1]
        for matrix, mask in partials.values():
            assert mask.all()
            assert ((matrix >= 0.0) & (matrix <= 100.0)).all()


# ----------------------------------------------------------------------
# Read deadlines and session robustness (review regressions)
# ----------------------------------------------------------------------
class TestFrameReadDeadline:
    def test_trickling_peer_cannot_extend_the_read(self):
        """The timeout is one frame-level deadline, not a per-recv one.

        A peer sending one byte per 0.1s keeps every individual recv
        under a 0.4s timeout forever; only a deadline spanning the whole
        frame read catches it.
        """
        reader, writer = socket.socketpair()
        data = wire.encode_frame(wire.PING, {"token": 1})
        stop = threading.Event()

        def trickle():
            for offset in range(len(data)):
                if stop.is_set():
                    return
                try:
                    writer.sendall(data[offset : offset + 1])
                except OSError:
                    return
                stop.wait(0.1)

        thread = threading.Thread(target=trickle, daemon=True)
        started = time.monotonic()
        thread.start()
        try:
            with pytest.raises(wire.TruncatedFrame):
                wire.read_frame(reader, timeout=0.4)
            assert time.monotonic() - started < 2.0
        finally:
            stop.set()
            thread.join(timeout=5.0)
            reader.close()
            writer.close()


class TestNodeSessionRobustness:
    def test_new_coordinator_preempts_idle_dead_session(self):
        """A coordinator that died without FIN must not wedge the node.

        The node watches its listener while a session is idle: a
        reconnecting coordinator preempts the silent one instead of
        rotting in the accept backlog.
        """
        server = ShardNodeServer(host="127.0.0.1", port=0)
        address = server.start()
        first = None
        second = None
        try:
            # First coordinator completes the handshake then goes
            # silent forever (a crashed host never sends FIN).
            first = socket.create_connection(address, timeout=5.0)
            wire.send_frame(
                first, wire.HELLO, {"protocol": wire.REMOTE_PROTOCOL_VERSION}
            )
            assert wire.read_frame(first, timeout=5.0).kind == wire.WELCOME
            # A second coordinator dialing in must still get served.
            second = socket.create_connection(address, timeout=5.0)
            wire.send_frame(
                second, wire.HELLO, {"protocol": wire.REMOTE_PROTOCOL_VERSION}
            )
            assert wire.read_frame(second, timeout=10.0).kind == wire.WELCOME
            wire.send_frame(second, wire.PING, {"token": 7})
            pong = wire.read_frame(second, timeout=5.0)
            assert pong.kind == wire.PONG
            assert pong.header["token"] == 7
        finally:
            for sock in (first, second):
                if sock is not None:
                    sock.close()
            server.stop()

    def test_plans_are_dropped_when_a_session_ends(self):
        """A PLAN with no EXECUTE must not leak when the session dies."""
        server = ShardNodeServer(host="127.0.0.1", port=0)
        address = server.start()
        try:
            sock = socket.create_connection(address, timeout=5.0)
            try:
                wire.send_frame(
                    sock, wire.HELLO, {"protocol": wire.REMOTE_PROTOCOL_VERSION}
                )
                assert wire.read_frame(sock, timeout=5.0).kind == wire.WELCOME
                header = wire.spec_to_header(_spec())
                header["qid"] = 77
                wire.send_frame(sock, wire.PLAN, header)
                # A PING round-trip proves the PLAN frame was processed.
                wire.send_frame(sock, wire.PING, {"token": 1})
                assert wire.read_frame(sock, timeout=5.0).kind == wire.PONG
                assert 77 in server._plans
            finally:
                sock.close()  # session dies between PLAN and EXECUTE
            deadline = time.monotonic() + 5.0
            while server._plans and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not server._plans
        finally:
            server.stop()

    def test_connect_and_close_probe_does_not_preempt(self, node):
        """A connect-and-close port scan must not kill a live session.

        Preemption only happens after the newcomer *completes* a valid
        handshake; a probe that dials and hangs up (or never speaks)
        is discarded and the original coordinator keeps its session.
        """
        sock = _dial(node)
        try:
            for _ in range(3):
                probe = socket.create_connection(node, timeout=5.0)
                probe.close()
            # Give the node time to notice (and wrongly act on) the
            # probes before we check the session still answers.
            time.sleep(0.3)
            wire.send_frame(sock, wire.PING, {"token": 31})
            pong = wire.read_frame(sock, timeout=5.0)
            assert pong.kind == wire.PONG
            assert pong.header["token"] == 31
        finally:
            sock.close()

    def test_garbage_dialer_does_not_preempt(self, node):
        """Bytes that never form a valid HELLO must not evict a session."""
        sock = _dial(node)
        garbage = None
        try:
            garbage = socket.create_connection(node, timeout=5.0)
            garbage.sendall(b"\x00" * 64)
            time.sleep(0.3)
            wire.send_frame(sock, wire.PING, {"token": 32})
            pong = wire.read_frame(sock, timeout=5.0)
            assert pong.kind == wire.PONG
            assert pong.header["token"] == 32
        finally:
            if garbage is not None:
                garbage.close()
            sock.close()


# ----------------------------------------------------------------------
# Live authentication battery (curator mode)
# ----------------------------------------------------------------------
CURATED_ROWS = np.arange(12, dtype=np.float64).reshape(6, 2)


@pytest.fixture()
def secret_node():
    server = ShardNodeServer(
        host="127.0.0.1",
        port=0,
        secret=AUTH_SECRET,
        curated={"data": CURATED_ROWS},
    )
    address = server.start()
    yield address, server
    server.stop()


def _auth_dial(address, secret):
    """Run the coordinator side of the four-message auth handshake.

    Returns ``(sock, final_frame)`` — the caller owns the socket.  The
    final frame is the authenticated WELCOME on success or the node's
    refusal ERROR otherwise.
    """
    sock = socket.create_connection(address, timeout=5.0)
    nonce = COORDINATOR_NONCE
    wire.send_frame(
        sock,
        wire.HELLO,
        {"protocol": wire.REMOTE_PROTOCOL_VERSION, "nonce": nonce},
    )
    challenge = wire.read_frame(sock, timeout=5.0)
    if challenge.kind != wire.WELCOME:
        return sock, challenge
    node_nonce = challenge.header["challenge"]
    assert wire.verify_proof(
        AUTH_SECRET,
        wire.AUTH_ROLE_NODE,
        nonce,
        node_nonce,
        challenge.header["proof"],
    ), "node proved itself with the wrong secret"
    wire.send_frame(
        sock,
        wire.HELLO,
        {
            "protocol": wire.REMOTE_PROTOCOL_VERSION,
            "proof": wire.auth_proof(
                secret, wire.AUTH_ROLE_COORDINATOR, node_nonce, nonce
            ),
        },
    )
    return sock, wire.read_frame(sock, timeout=5.0)


class TestLiveAuthentication:
    def test_correct_secret_completes_and_reports_manifests(self, secret_node):
        address, _server = secret_node
        sock, final = _auth_dial(address, AUTH_SECRET)
        try:
            assert final.kind == wire.WELCOME
            assert final.header["authenticated"] is True
            assert final.header["manifests"] == [wire.manifest_entry("data", 6, 2)]
            # The session is fully live after the handshake.
            wire.send_frame(sock, wire.PING, {"token": 3})
            pong = wire.read_frame(sock, timeout=5.0)
            assert pong.kind == wire.PONG
            assert pong.header["token"] == 3
        finally:
            sock.close()

    def test_wrong_secret_is_refused_before_any_query_frame(self, secret_node):
        address, server = secret_node
        sock, final = _auth_dial(address, "not-the-secret")
        try:
            assert final.kind == wire.ERROR
            assert final.header["code"] == "auth_failed"
            # The node hung up: nothing after the refusal is served.
            with pytest.raises(wire.FrameError):
                wire.send_frame(sock, wire.PING, {"token": 4})
                wire.read_frame(sock, timeout=2.0)
        finally:
            sock.close()
        assert not server._plans

    def test_hello_without_nonce_is_refused(self, secret_node):
        address, _server = secret_node
        sock = socket.create_connection(address, timeout=5.0)
        try:
            wire.send_frame(
                sock, wire.HELLO, {"protocol": wire.REMOTE_PROTOCOL_VERSION}
            )
            final = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert final.kind == wire.ERROR
        assert final.header["code"] == "auth_failed"

    def test_query_instead_of_proof_is_refused(self, secret_node):
        """A dialer that skips the proof gets auth_failed, not service."""
        address, _server = secret_node
        sock = socket.create_connection(address, timeout=5.0)
        try:
            wire.send_frame(
                sock,
                wire.HELLO,
                {
                    "protocol": wire.REMOTE_PROTOCOL_VERSION,
                    "nonce": COORDINATOR_NONCE,
                },
            )
            challenge = wire.read_frame(sock, timeout=5.0)
            assert challenge.kind == wire.WELCOME
            wire.send_frame(sock, wire.PING, {"token": 9})
            final = wire.read_frame(sock, timeout=5.0)
        finally:
            sock.close()
        assert final.kind == wire.ERROR
        assert final.header["code"] == "auth_failed"

    def test_segment_push_to_curated_dataset_is_refused(self):
        """Curated rows are node property: SEGMENT for them is an error."""
        server = ShardNodeServer(
            host="127.0.0.1", port=0, curated={"data": CURATED_ROWS}
        )
        address = server.start()
        try:
            sock = _dial(address)
            try:
                header, body = wire.array_to_body(np.zeros((3, 2)))
                header.update({"dataset": "data", "version": 1, "shard": 0})
                wire.send_frame(sock, wire.SEGMENT, header, body)
                final = wire.read_frame(sock, timeout=5.0)
            finally:
                sock.close()
            assert final.kind == wire.ERROR
            assert "curated" in final.header["error"]
        finally:
            server.stop()
