"""Unit tests for the durable privacy-budget journal.

Four concerns, one file:

1. the wire format round-trips and every torn-tail shape (truncated
   header, truncated payload, flipped byte, garbage append) is detected
   and truncated to the last intact record;
2. replay is *conservative*: a reservation with no terminal record is
   spent, a recovery barrier settles pre-crash holds even when
   reservation ids are reused, and recovered remaining budget is never
   higher than the in-memory truth was;
3. the manager/streaming integration journals every lifecycle event and
   re-registration adopts recovered spends with ``math.fsum`` parity;
4. nothing in the journal or the ``journal.*`` metrics derives from
   record values or released outputs (the sentinel-band check).
"""

import json
import math
import os
import struct
import zlib

import numpy as np
import pytest

from repro.accounting.budget import PrivacyBudget
from repro.accounting.journal import (
    COMMIT,
    CONSERVATIVE_DETAIL,
    JOURNAL_NAME,
    MAGIC,
    RECOVERY,
    REGISTER,
    RESERVE,
    RETIRE,
    ROLLBACK,
    BudgetJournal,
    compact,
    fsck,
    journal_path,
    recover,
    replay,
    scan,
)
from repro.accounting.manager import DatasetManager
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import Mean
from repro.exceptions import (
    DatasetError,
    GuptError,
    JournalCorruption,
    JournalError,
    PrivacyBudgetExhausted,
)
from repro.observability import MetricsRegistry
from repro.streaming import StreamingGupt, WindowConfig
from repro.streaming.window import STREAM_JOURNAL_NAME
from repro.testing import failpoints

_FRAME = struct.Struct("<II")


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture
def state_dir(tmp_path):
    return str(tmp_path)


@pytest.fixture
def path(state_dir):
    return journal_path(state_dir)


def table(n=32, lo=0.0, hi=10.0, seed=0):
    rng = np.random.default_rng(seed)
    return DataTable(rng.uniform(lo, hi, size=(n, 1)), column_names=("x",))


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_round_trip(self, path):
        with BudgetJournal(path) as journal:
            journal.append(REGISTER, "census", epsilon=2.0)
            journal.append(RESERVE, "census", epsilon=0.25, reservation_id=0,
                           query="q1")
            journal.append(COMMIT, "census", epsilon=0.25, reservation_id=0,
                           query="q1")
        scanned = scan(path)
        assert not scanned.torn
        assert [r["kind"] for r in scanned.records] == [REGISTER, RESERVE, COMMIT]
        assert scanned.records[0] == {
            "kind": REGISTER, "dataset": "census", "epsilon": 2.0,
        }
        assert scanned.records[1]["rid"] == 0
        assert scanned.records[1]["query"] == "q1"
        assert scanned.valid_bytes == scanned.total_bytes == os.path.getsize(path)

    def test_missing_file_scans_empty(self, path):
        scanned = scan(path)
        assert scanned.records == [] and not scanned.torn

    def test_unknown_kind_rejected_at_append(self, path):
        with BudgetJournal(path) as journal:
            with pytest.raises(JournalError):
                journal.append("upsert", "census")

    def test_bad_magic_is_corruption_not_empty(self, path):
        with open(path, "wb") as handle:
            handle.write(b"NOTAWAL!" + b"x" * 32)
        with pytest.raises(JournalCorruption):
            scan(path)

    def test_reopen_appends_after_existing_records(self, path):
        with BudgetJournal(path) as journal:
            journal.append(REGISTER, "census", epsilon=2.0)
        with BudgetJournal(path) as journal:
            journal.append(COMMIT, "census", epsilon=0.5)
        scanned = scan(path)
        assert [r["kind"] for r in scanned.records] == [REGISTER, COMMIT]


class TestTornTails:
    """Every way a crash can shear the tail, detected and truncated."""

    def _intact(self, path, events=3):
        with BudgetJournal(path) as journal:
            journal.append(REGISTER, "census", epsilon=2.0)
            for i in range(events - 1):
                journal.append(COMMIT, "census", epsilon=0.25,
                               reservation_id=i, query=f"q{i}")
        return os.path.getsize(path)

    def test_torn_magic_header(self, path):
        with open(path, "wb") as handle:
            handle.write(MAGIC[:4])
        scanned = scan(path)
        assert scanned.torn and scanned.reason == "torn header"
        assert scanned.records == [] and scanned.valid_bytes == 0

    def test_torn_frame_header(self, path):
        intact = self._intact(path)
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00")
        scanned = scan(path)
        assert scanned.torn and scanned.reason == "torn frame header"
        assert scanned.valid_bytes == intact and len(scanned.records) == 3

    def test_torn_payload(self, path):
        intact = self._intact(path)
        payload = b'{"kind":"commit","dataset":"census"}'
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        scanned = scan(path)
        assert scanned.torn and scanned.reason == "torn record payload"
        assert scanned.valid_bytes == intact

    def test_flipped_byte_fails_checksum(self, path):
        self._intact(path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 3)
            byte = handle.read(1)
            handle.seek(size - 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        scanned = scan(path)
        assert scanned.torn and scanned.reason == "checksum mismatch"
        assert len(scanned.records) == 2

    def test_valid_frame_invalid_json(self, path):
        intact = self._intact(path)
        payload = b"\xff\xfenot json"
        with open(path, "ab") as handle:
            handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)) + payload)
        scanned = scan(path)
        assert scanned.torn and scanned.reason == "undecodable payload"
        assert scanned.valid_bytes == intact

    def test_implausible_length_stops_scan(self, path):
        intact = self._intact(path)
        with open(path, "ab") as handle:
            handle.write(_FRAME.pack(1 << 30, 0))
        scanned = scan(path)
        assert scanned.torn and "implausible" in scanned.reason
        assert scanned.valid_bytes == intact

    def test_recover_truncates_and_counts(self, path):
        intact = self._intact(path)
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 11)
        registry = MetricsRegistry()
        result = recover(path, metrics=registry)
        assert result.torn and result.truncated_bytes == 11
        assert os.path.getsize(path) == intact
        assert registry.snapshot()["counters"]["journal.torn_tail_truncations"] == 1
        # Nothing before the tear was lost.
        assert result.datasets["census"].spent == pytest.approx(0.5)
        # And the file now scans clean.
        assert not scan(path).torn


# ----------------------------------------------------------------------
# Conservative replay
# ----------------------------------------------------------------------
class TestConservativeReplay:
    def test_unsettled_reservation_is_spent(self):
        result = replay([
            {"kind": REGISTER, "dataset": "d", "epsilon": 2.0},
            {"kind": RESERVE, "dataset": "d", "epsilon": 0.5, "rid": 0,
             "query": "q1"},
        ])
        state = result.datasets["d"]
        assert state.spent == 0.5 and state.conservative == 1
        assert state.committed[0].detail == CONSERVATIVE_DETAIL

    def test_rollback_returns_the_hold(self):
        result = replay([
            {"kind": REGISTER, "dataset": "d", "epsilon": 2.0},
            {"kind": RESERVE, "dataset": "d", "epsilon": 0.5, "rid": 0},
            {"kind": ROLLBACK, "dataset": "d", "epsilon": 0.5, "rid": 0},
        ])
        state = result.datasets["d"]
        assert state.spent == 0.0 and state.conservative == 0

    def test_recovery_barrier_defeats_rid_reuse(self):
        # Per-budget reservation ids restart at 0 after a crash.  Without
        # the barrier, generation 2's commit of rid 0 would settle
        # generation 1's abandoned rid-0 hold and the crash-lost epsilon
        # would be resurrected.
        result = replay([
            {"kind": REGISTER, "dataset": "d", "epsilon": 2.0},
            {"kind": RESERVE, "dataset": "d", "epsilon": 0.5, "rid": 0},
            {"kind": RECOVERY, "dataset": ""},
            {"kind": RESERVE, "dataset": "d", "epsilon": 0.25, "rid": 0},
            {"kind": COMMIT, "dataset": "d", "epsilon": 0.25, "rid": 0},
        ])
        state = result.datasets["d"]
        assert state.spent == 0.75  # 0.5 conservative + 0.25 committed
        assert state.conservative == 1

    def test_retire_is_terminal(self):
        result = replay([
            {"kind": REGISTER, "dataset": "d", "epsilon": 2.0},
            {"kind": RESERVE, "dataset": "d", "epsilon": 0.5, "rid": 0},
            {"kind": RETIRE, "dataset": "d"},
        ])
        assert "d" not in result.datasets
        assert result.retired[0].retired
        # The hold died with the dataset: no conservative spend invented.
        assert result.retired[0].conservative == 0

    def test_anomalies_flagged_not_fatal(self):
        result = replay([
            {"kind": REGISTER, "dataset": "d", "epsilon": 2.0},
            {"kind": REGISTER, "dataset": "d", "epsilon": 3.0},
            {"kind": COMMIT, "dataset": "ghost", "epsilon": 0.5},
            {"kind": ROLLBACK, "dataset": "d", "rid": 9},
        ])
        assert len(result.anomalies) == 3
        assert result.datasets["d"].total == 2.0  # first registration wins

    def test_fsum_parity_with_ledger(self):
        # 0.1 is not dyadic: naive left-to-right float addition drifts
        # from the correctly-rounded sum.  Recovered spend is defined as
        # the fsum of the individually recovered epsilons — the same
        # arithmetic the audit ledger uses — so the two agree bit-for-bit
        # even where running addition would not.
        from repro.accounting.ledger import PrivacyLedger

        epsilons = [0.1] * 10
        records = [{"kind": REGISTER, "dataset": "d", "epsilon": 2.0}]
        ledger = PrivacyLedger()
        for i, eps in enumerate(epsilons):
            records.append({"kind": RESERVE, "dataset": "d", "epsilon": eps,
                            "rid": i})
            records.append({"kind": COMMIT, "dataset": "d", "epsilon": eps,
                            "rid": i})
            ledger.record(eps, f"q{i}")
        state = replay(records).datasets["d"]
        assert state.spent == ledger.total_spent == math.fsum(epsilons)

    def test_dyadic_spends_recover_bit_exact_against_budget(self):
        # With dyadic epsilons every addition is exact, so the recovered
        # state must equal the live PrivacyBudget to the last bit.
        epsilons = [3 / 1024, 5 / 1024, 7 / 1024, 509 / 1024]
        records = [{"kind": REGISTER, "dataset": "d", "epsilon": 2.0}]
        for i, eps in enumerate(epsilons):
            records.append({"kind": RESERVE, "dataset": "d", "epsilon": eps,
                            "rid": i})
            records.append({"kind": COMMIT, "dataset": "d", "epsilon": eps,
                            "rid": i})
        state = replay(records).datasets["d"]
        budget = PrivacyBudget(2.0)
        for eps in epsilons:
            budget.charge(eps)
        assert state.spent == budget.spent
        assert state.remaining == budget.remaining


# ----------------------------------------------------------------------
# Manager integration
# ----------------------------------------------------------------------
class TestManagerJournaling:
    def test_lifecycle_event_stream(self, state_dir, path):
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            registered.charge(0.25, "q1")
            reservation = registered.reserve(0.25, "q2")
            reservation.commit()
            rolled = registered.reserve(0.5, "q3")
            rolled.rollback()
            manager.unregister("census")
        kinds = [r["kind"] for r in scan(path).records]
        assert kinds == [
            REGISTER, RESERVE, COMMIT, RESERVE, COMMIT, RESERVE, ROLLBACK,
            RETIRE,
        ]

    def test_charge_is_reserve_plus_commit_on_disk(self, state_dir, path):
        with DatasetManager(state_dir=state_dir) as manager:
            manager.register("census", table(), total_budget=2.0).charge(
                0.5, "q1"
            )
        records = scan(path).records
        assert records[1]["kind"] == RESERVE and records[2]["kind"] == COMMIT
        assert records[1]["rid"] == records[2]["rid"]

    def test_recovery_matches_live_state_exactly(self, state_dir, path):
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            for i in range(5):
                registered.charge(0.125, f"q{i}")
            live_spent = registered.budget.spent
            live_remaining = registered.budget.remaining
        recovered = recover(path).datasets["census"]
        assert recovered.spent == live_spent
        assert recovered.remaining == live_remaining

    def test_reregistration_adopts_recovered_spend(self, state_dir):
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            registered.charge(0.25, "q1")
            registered.charge(0.5, "q2")
        with DatasetManager(state_dir=state_dir) as manager:
            assert manager.recovered_names() == ["census"]
            registered = manager.register("census", table(), total_budget=2.0)
            assert manager.recovered_names() == []
            assert registered.budget.spent == 0.75
            assert registered.budget.remaining == 1.25
            ledger = [(e.query, e.epsilon) for e in registered.ledger]
            assert ledger == [("q1", 0.25), ("q2", 0.5)]

    def test_reregistration_total_must_match(self, state_dir):
        with DatasetManager(state_dir=state_dir) as manager:
            manager.register("census", table(), total_budget=2.0)
        with DatasetManager(state_dir=state_dir) as manager:
            with pytest.raises(DatasetError):
                manager.register("census", table(), total_budget=4.0)

    def test_inflight_reservation_recovers_as_spent(self, state_dir):
        manager = DatasetManager(state_dir=state_dir)
        registered = manager.register("census", table(), total_budget=2.0)
        registered.charge(0.25, "q1")
        registered.reserve(0.5, "q2")  # never settled: crash now
        manager.journal.abandon()

        with DatasetManager(state_dir=state_dir) as successor:
            adopted = successor.register("census", table(), total_budget=2.0)
            # Conservative: the in-flight 0.5 counts as spent...
            assert adopted.budget.spent == 0.75
            # ...and the recovered remaining is never above the truth
            # (truth here: 1.25 if q2 died pre-release, 1.25 if post).
            assert adopted.budget.remaining <= 1.25
            entries = {e.query: e for e in adopted.ledger}
            assert entries["q2"].detail == CONSERVATIVE_DETAIL

    def test_restart_cycle_writes_recovery_barrier(self, state_dir, path):
        with DatasetManager(state_dir=state_dir) as manager:
            manager.register("census", table(), total_budget=2.0)
        registry = MetricsRegistry()
        with DatasetManager(metrics=registry, state_dir=state_dir):
            pass
        kinds = [r["kind"] for r in scan(path).records]
        assert kinds == [REGISTER, RECOVERY]
        assert registry.snapshot()["counters"]["journal.recoveries"] == 1

    def test_retired_dataset_can_register_fresh(self, state_dir):
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            registered.charge(1.0, "q1")
            manager.unregister("census")
        with DatasetManager(state_dir=state_dir) as manager:
            assert manager.recovered_names() == []
            fresh = manager.register("census", table(), total_budget=5.0)
            assert fresh.budget.spent == 0.0

    def test_exhaustion_arithmetic_survives_restart(self, state_dir):
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=1.0)
            for i in range(3):
                registered.charge(0.25, f"q{i}")
        with DatasetManager(state_dir=state_dir) as manager:
            adopted = manager.register("census", table(), total_budget=1.0)
            adopted.charge(0.25, "q3")
            with pytest.raises(PrivacyBudgetExhausted):
                adopted.charge(0.25, "q4")

    def test_journal_error_on_reserve_refuses_query(self, state_dir):
        failpoints.arm("journal.append.pre", "error", fire_on_hit=2)
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            with pytest.raises((JournalError, failpoints.FailpointError)):
                registered.reserve(0.25, "q1")
            # The in-memory hold was released: nothing leaks.
            assert registered.budget.reserved == 0.0
            assert registered.budget.remaining == 2.0

    def test_no_journal_without_state_dir(self):
        manager = DatasetManager()
        assert manager.journal is None
        manager.register("census", table(), total_budget=2.0).charge(0.5, "q")
        manager.close()


# ----------------------------------------------------------------------
# Streaming integration
# ----------------------------------------------------------------------
class TestStreamingJournal:
    def _stream(self, state_dir, **kwargs):
        config = WindowConfig(
            window_epochs=kwargs.pop("window_epochs", 2),
            aging_epochs=kwargs.pop("aging_epochs", 2),
            epsilon_per_epoch=kwargs.pop("epsilon_per_epoch", 1.0),
        )
        return StreamingGupt(config, rng=0, state_dir=state_dir)

    def test_epoch_lifecycle_journaled(self, state_dir):
        stream = self._stream(state_dir)
        rng = np.random.default_rng(0)
        for _ in range(4):
            stream.ingest(rng.uniform(0, 10, size=50))
            stream.advance()
        stream.close()
        records = scan(os.path.join(state_dir, STREAM_JOURNAL_NAME)).records
        registers = [r for r in records if r["kind"] == REGISTER]
        retires = [r for r in records if r["kind"] == RETIRE]
        assert [r["dataset"] for r in registers] == [
            f"epoch-{i}" for i in range(5)
        ]
        # aging_epochs=2: epochs 0 and 1 aged out by the time epoch 4 opened.
        assert [r["dataset"] for r in retires] == ["epoch-0", "epoch-1"]

    def test_query_reserves_then_commits_every_live_epoch(self, state_dir):
        stream = self._stream(state_dir)
        rng = np.random.default_rng(0)
        stream.ingest(rng.uniform(0, 10, size=100))
        stream.advance()
        stream.ingest(rng.uniform(0, 10, size=100))
        stream.query(Mean(), TightRange((0.0, 10.0)), epsilon=0.25)
        stream.close()
        records = scan(os.path.join(state_dir, STREAM_JOURNAL_NAME)).records
        reserves = [r for r in records if r["kind"] == RESERVE]
        commits = [r for r in records if r["kind"] == COMMIT]
        assert {r["dataset"] for r in reserves} == {"epoch-0", "epoch-1"}
        assert {r["dataset"] for r in commits} == {"epoch-0", "epoch-1"}
        assert all(r["epsilon"] == 0.25 for r in reserves + commits)

    def test_refused_query_journals_rollbacks(self, state_dir):
        stream = self._stream(state_dir, epsilon_per_epoch=0.25)
        rng = np.random.default_rng(0)
        stream.ingest(rng.uniform(0, 10, size=100))
        stream.advance()
        stream.ingest(rng.uniform(0, 10, size=100))
        # Epoch 1 (current) still has 0.25; spend epoch 0 down first so
        # the multi-epoch reserve fails halfway and must unwind.
        stream.query(Mean(), TightRange((0.0, 10.0)), epsilon=0.25)
        with pytest.raises(PrivacyBudgetExhausted):
            stream.query(Mean(), TightRange((0.0, 10.0)), epsilon=0.25)
        stream.close()
        records = scan(os.path.join(state_dir, STREAM_JOURNAL_NAME)).records
        rollbacks = [r for r in records if r["kind"] == ROLLBACK]
        assert rollbacks == []  # exhaustion hit before any journaled hold
        # Replay agrees both epochs are fully spent by query 1 only.
        result = replay(records)
        assert result.datasets["epoch-0"].spent == 0.25
        assert result.datasets["epoch-1"].spent == 0.25


# ----------------------------------------------------------------------
# fsck / compaction
# ----------------------------------------------------------------------
class TestFsck:
    def _spend(self, state_dir, epsilons=(0.25, 0.5)):
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            for i, eps in enumerate(epsilons):
                registered.charge(eps, f"q{i}")

    def test_clean_report(self, state_dir, path):
        self._spend(state_dir)
        report = fsck(path)
        assert report.exists and report.clean and not report.anomalies
        assert report.datasets["census"]["spent"] == 0.75
        assert report.datasets["census"]["remaining"] == 1.25
        payload = report.to_dict()
        assert payload["torn"] is False and payload["truncated_bytes"] == 0

    def test_missing_journal(self, path):
        report = fsck(path)
        assert not report.exists and report.records == 0

    def test_repair_truncates_torn_tail(self, state_dir, path):
        self._spend(state_dir)
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        unrepaired = fsck(path)
        assert unrepaired.torn and not unrepaired.clean
        assert os.path.getsize(path) == intact + 3  # fsck alone never writes
        repaired = fsck(path, repair=True)
        assert repaired.torn and repaired.repaired and repaired.clean
        assert os.path.getsize(path) == intact
        assert repaired.datasets["census"]["spent"] == 0.75

    def test_compaction_preserves_spend_bit_for_bit(self, state_dir, path):
        epsilons = [0.1] * 7
        self._spend(state_dir, epsilons=epsilons)
        before = recover(path).datasets["census"]
        size_before = os.path.getsize(path)
        written = compact(path)
        after = recover(path).datasets["census"]
        assert after.spent == before.spent  # fsum parity through rewrite
        assert after.remaining == before.remaining
        assert written == 1 + len(epsilons)
        assert os.path.getsize(path) < size_before
        # A compacted journal is a valid seed for a successor manager.
        with DatasetManager(state_dir=state_dir) as manager:
            adopted = manager.register("census", table(), total_budget=2.0)
            assert adopted.budget.spent == before.spent

    def test_cli_fsck_round_trip(self, state_dir, path, capsys):
        from repro.cli import main

        self._spend(state_dir)
        assert main(["fsck", "--state-dir", state_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["datasets"]["census"]["spent"] == 0.75
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad")
        assert main(["fsck", "--state-dir", state_dir]) == 1
        capsys.readouterr()
        assert main(["fsck", "--state-dir", state_dir, "--repair"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repaired"] is True
        assert payload["datasets"]["census"]["spent"] == 0.75

    def test_cli_fsck_missing_journal(self, state_dir, capsys):
        from repro.cli import main

        assert main(["fsck", "--state-dir", state_dir]) == 1
        assert "no journal" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Failpoints
# ----------------------------------------------------------------------
class TestFailpoints:
    def test_error_mode_raises_on_nth_hit(self):
        failpoints.arm("site.x", "error", fire_on_hit=3)
        failpoints.hit("site.x")
        failpoints.hit("site.x")
        with pytest.raises(failpoints.FailpointError):
            failpoints.hit("site.x")
        # One-shot: disarmed after firing.
        failpoints.hit("site.x")
        assert failpoints.hit_count("site.x") == 4

    def test_env_spec_parsing(self, monkeypatch):
        monkeypatch.setenv(
            failpoints.ENV_VAR, "a.b=error, c.d = error@2"
        )
        failpoints.reset()
        assert failpoints.is_armed("a.b")
        assert failpoints.is_armed("c.d")
        failpoints.hit("c.d")
        with pytest.raises(failpoints.FailpointError):
            failpoints.hit("c.d")

    def test_bad_env_spec_rejected(self, monkeypatch):
        monkeypatch.setenv(failpoints.ENV_VAR, "nonsense=explode")
        with pytest.raises(GuptError):
            failpoints.reset()
            failpoints.is_armed("anything")

    def test_unarmed_sites_are_free(self):
        failpoints.hit("never.armed")
        assert failpoints.hit_count("never.armed") == 1
        assert not failpoints.is_armed("never.armed")


# ----------------------------------------------------------------------
# Release safety: the journal never carries data-derived values
# ----------------------------------------------------------------------
SENTINEL_LO, SENTINEL_HI = 7000.0, 7400.0


def numeric_leaves(payload):
    if isinstance(payload, bool):
        return []
    if isinstance(payload, (int, float)):
        return [float(payload)]
    if isinstance(payload, dict):
        out = []
        for key, value in payload.items():
            out.extend(numeric_leaves(key))
            out.extend(numeric_leaves(value))
        return out
    if isinstance(payload, (list, tuple)):
        out = []
        for value in payload:
            out.extend(numeric_leaves(value))
        return out
    if isinstance(payload, str):
        try:
            return [float(payload)]
        except ValueError:
            return []
    return []


class TestJournalReleaseSafety:
    """Satellite: no journal record or journal.* metric derives from
    block outputs or released values beyond the epsilon amounts."""

    def test_journal_and_metrics_stay_out_of_sentinel_band(self, state_dir,
                                                           path):
        from repro.core.gupt import GuptRuntime

        registry = MetricsRegistry()
        rng = np.random.default_rng(7)
        sentinel_table = DataTable(
            rng.uniform(SENTINEL_LO + 50, SENTINEL_HI - 50, size=(400, 1)),
            column_names=("v",),
            input_ranges=[(SENTINEL_LO, SENTINEL_HI)],
        )
        runtime = GuptRuntime(metrics=registry, rng=3, state_dir=state_dir)
        runtime.dataset_manager.register(
            "census", sentinel_table, total_budget=4.0
        )
        result = runtime.run(
            "census", Mean(), TightRange((SENTINEL_LO, SENTINEL_HI)),
            epsilon=1.0,
        )
        runtime.close()
        released = float(result.value[0])
        assert SENTINEL_LO <= released <= SENTINEL_HI  # the leak would be real

        # 1. Every numeric leaf of every journal record stays far below
        #    the band: epsilons, reservation ids, totals only.
        for record in scan(path).records:
            for leaf in numeric_leaves(record):
                assert not (SENTINEL_LO <= abs(leaf) <= SENTINEL_HI), record

        # 2. The raw journal bytes never contain the released value.
        with open(path, "rb") as handle:
            raw = handle.read().decode("latin-1")
        assert repr(released) not in raw
        assert f"{released:.6f}"[:8] not in raw

        # 3. journal.* metrics (and the rest of the snapshot) stay out of
        #    the band too.
        snapshot = registry.snapshot()
        journal_metrics = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("journal.")
        }
        assert journal_metrics.get('journal.records_written{kind="register"}') == 1
        assert journal_metrics.get("journal.fsyncs", 0) >= 3
        for leaf in numeric_leaves(snapshot):
            assert not (SENTINEL_LO <= abs(leaf) <= SENTINEL_HI)

    def test_query_names_carry_no_values(self, state_dir, path):
        # The journal stores the query *name* the analyst supplied and
        # nothing else about the query: no program text, no outputs.
        with DatasetManager(state_dir=state_dir) as manager:
            registered = manager.register("census", table(), total_budget=2.0)
            registered.charge(0.25, "median-income-by-zip")
        for record in scan(path).records:
            assert set(record) <= {
                "kind", "dataset", "epsilon", "rid", "query", "detail",
            }
