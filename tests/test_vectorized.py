"""Tests for the vectorized block-execution fast path.

Three layers: the batch primitives (stacking, batch execution, fallback
substitution), the computation manager's backend selection with its
counted fallback hierarchy, and the end-to-end guarantees — bit-identical
releases across the full serial/thread/pool/vectorized matrix for the
same seeded request, and release-safe telemetry.
"""

import numpy as np
import pytest

from repro.core.gupt import GuptRuntime
from repro.accounting.manager import DatasetManager
from repro.core.range_estimation import TightRange
from repro.datasets.table import DataTable
from repro.estimators.statistics import (
    Count,
    Mean,
    Median,
    Quantile,
    StandardDeviation,
    Variance,
)
from repro.exceptions import ComputationError
from repro.observability import MetricsRegistry
from repro.runtime.computation_manager import BACKENDS, ComputationManager
from repro.runtime.service import ANALYST, OWNER, GuptService, QueryRequest
from repro.runtime.timing import TimingDefense
from repro.runtime.vectorized import (
    VectorizedProgram,
    run_batch_blocks,
    stack_blocks,
    supports_batch,
)

FALLBACK = np.array([5.0])
BLOCKS = [np.full((4, 1), float(i)) for i in range(6)]


def plain_mean(block):
    return float(np.mean(block))


class TestBatchPrimitives:
    def test_supports_batch_detection(self):
        assert supports_batch(Mean())
        assert not supports_batch(plain_mean)

    def test_estimators_satisfy_the_protocol(self):
        for program in (Mean(), Median(), Variance(), StandardDeviation()):
            assert isinstance(program, VectorizedProgram)

    def test_stack_blocks_uniform(self):
        stacked = stack_blocks(BLOCKS)
        assert stacked.shape == (6, 4, 1)
        assert np.array_equal(stacked[3], BLOCKS[3])

    def test_stack_blocks_ragged_returns_none(self):
        assert stack_blocks([np.zeros((4, 1)), np.zeros((3, 1))]) is None
        assert stack_blocks([]) is None

    def test_run_batch_blocks_outputs(self):
        stacked = stack_blocks(BLOCKS)
        batch = run_batch_blocks(Mean(), stacked, 1, FALLBACK)
        assert batch.num_blocks == 6
        assert batch.outputs.shape == (6, 1)
        assert list(batch.outputs[:, 0]) == [float(i) for i in range(6)]
        assert batch.succeeded.all()

    def test_to_executions_expansion(self):
        batch = run_batch_blocks(Mean(), stack_blocks(BLOCKS), 1, FALLBACK)
        executions = batch.to_executions()
        assert [e.output[0] for e in executions] == [float(i) for i in range(6)]
        assert all(e.succeeded and not e.killed for e in executions)
        assert all(e.elapsed == batch.per_block_elapsed for e in executions)

    def test_nonfinite_rows_substituted_with_fallback(self):
        class NaNBatch:
            def __call__(self, block):
                return float(np.mean(block))

            def run_batch(self, stacked):
                out = np.mean(stacked[:, :, 0], axis=1)
                out[2] = np.nan
                return out

        batch = run_batch_blocks(NaNBatch(), stack_blocks(BLOCKS), 1, FALLBACK)
        assert batch.outputs[2, 0] == 5.0
        assert list(batch.succeeded) == [True, True, False, True, True, True]
        assert np.isfinite(batch.outputs).all()

    def test_raising_batch_returns_none(self):
        class Broken:
            def __call__(self, block):
                return 0.0

            def run_batch(self, stacked):
                raise RuntimeError("boom")

        assert run_batch_blocks(Broken(), stack_blocks(BLOCKS), 1, FALLBACK) is None

    def test_wrong_shape_batch_returns_none(self):
        class WrongShape:
            def __call__(self, block):
                return 0.0

            def run_batch(self, stacked):
                return np.zeros((stacked.shape[0] + 1,))

        assert run_batch_blocks(WrongShape(), stack_blocks(BLOCKS), 1, FALLBACK) is None

    def test_batch_call_sees_read_only_view(self):
        # The stacked array may be a cache entry shared across queries:
        # in-place mutation must raise (degrading the batch) rather
        # than write through, on cold and warm caches alike.
        class Mutator:
            def __call__(self, block):
                return float(np.mean(block))

            def run_batch(self, stacked):
                stacked[...] = 0.0
                return np.mean(stacked[:, :, 0], axis=1)

        stacked = stack_blocks(BLOCKS)
        assert run_batch_blocks(Mutator(), stacked, 1, FALLBACK) is None
        assert np.array_equal(stacked, np.stack(BLOCKS))

    def test_no_state_carryover_across_queries(self):
        class Stateful:
            def __init__(self):
                self.calls = 0

            def __call__(self, block):
                return 0.0

            def run_batch(self, stacked):
                self.calls += 1
                return np.full(stacked.shape[0], float(self.calls))

        program = Stateful()
        stacked = stack_blocks(BLOCKS)
        first = run_batch_blocks(program, stacked, 1, FALLBACK)
        second = run_batch_blocks(program, stacked, 1, FALLBACK)
        # Each query ran against a fresh instance: counter stays at 1.
        assert list(first.outputs[:, 0]) == [1.0] * 6
        assert list(second.outputs[:, 0]) == [1.0] * 6
        assert program.calls == 0


class TestManagerBackend:
    def test_vectorized_in_backends(self):
        assert "vectorized" in BACKENDS

    def test_batch_path_taken_for_batch_programs(self):
        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        results = manager.run_blocks(Mean(), BLOCKS, 1, FALLBACK)
        assert [r.output[0] for r in results] == [float(i) for i in range(6)]
        counters = registry.snapshot()["counters"]
        assert counters["vectorized.batches"] == 1
        assert "blocks.executed" in counters

    def test_fallback_no_batch_form(self):
        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        results = manager.run_blocks(plain_mean, BLOCKS, 1, FALLBACK)
        assert [r.output[0] for r in results] == [float(i) for i in range(6)]
        counters = registry.snapshot()["counters"]
        assert counters['vectorized.fallbacks{reason="no_batch_form"}'] == 1
        assert counters.get("vectorized.batches", 0) == 0

    def test_fallback_timing_defense(self):
        registry = MetricsRegistry()
        manager = ComputationManager(
            backend="vectorized",
            metrics=registry,
            timing=TimingDefense(cycle_budget=5.0),
        )
        results = manager.run_blocks(Mean(), BLOCKS, 1, FALLBACK)
        assert [r.output[0] for r in results] == [float(i) for i in range(6)]
        counters = registry.snapshot()["counters"]
        assert counters['vectorized.fallbacks{reason="timing_defense"}'] == 1

    def test_fallback_ragged_blocks(self):
        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        ragged = BLOCKS + [np.full((3, 1), 6.0)]
        results = manager.run_blocks(Mean(), ragged, 1, FALLBACK)
        assert [r.output[0] for r in results] == [float(i) for i in range(7)]
        counters = registry.snapshot()["counters"]
        assert counters['vectorized.fallbacks{reason="ragged_blocks"}'] == 1

    def test_fallback_batch_error(self):
        class Broken:
            def __call__(self, block):
                return float(np.mean(block))

            def run_batch(self, stacked):
                raise RuntimeError("boom")

        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        results = manager.run_blocks(Broken(), BLOCKS, 1, FALLBACK)
        # The per-block __call__ path still answers the query.
        assert [r.output[0] for r in results] == [float(i) for i in range(6)]
        counters = registry.snapshot()["counters"]
        assert counters['vectorized.fallbacks{reason="batch_error"}'] == 1

    def test_collected_matrix_matches_execution_list(self):
        vec = ComputationManager(backend="vectorized", metrics=MetricsRegistry())
        serial = ComputationManager(backend="serial", metrics=MetricsRegistry())
        collected = vec.run_blocks_collected(Mean(), 1, FALLBACK, blocks=BLOCKS)
        executions = serial.run_blocks(Mean(), BLOCKS, 1, FALLBACK)
        assert np.array_equal(
            collected.outputs, np.vstack([e.output for e in executions])
        )
        assert collected.succeeded.all()

    def test_collected_without_blocks_list(self):
        # The fast path needs only the stacked view; no per-block list.
        manager = ComputationManager(backend="vectorized", metrics=MetricsRegistry())
        collected = manager.run_blocks_collected(
            Mean(), 1, FALLBACK, stacked=stack_blocks(BLOCKS)
        )
        assert list(collected.outputs[:, 0]) == [float(i) for i in range(6)]

    def test_collected_degrades_to_chambers(self):
        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        collected = manager.run_blocks_collected(
            plain_mean, 1, FALLBACK, blocks=BLOCKS
        )
        assert list(collected.outputs[:, 0]) == [float(i) for i in range(6)]
        counters = registry.snapshot()["counters"]
        assert counters['vectorized.fallbacks{reason="no_batch_form"}'] == 1

    def test_mutating_batch_degrades_to_chambers(self):
        class MutatingBatch:
            def __call__(self, block):
                return float(np.mean(block))

            def run_batch(self, stacked):
                stacked *= 0.0
                return np.mean(stacked[:, :, 0], axis=1)

        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        stacked = stack_blocks(BLOCKS)
        results = manager.run_blocks(
            MutatingBatch(), BLOCKS, 1, FALLBACK, stacked=stacked
        )
        # The in-place write raised against the read-only view; the
        # per-block path answered and the stacked array is untouched.
        assert [r.output[0] for r in results] == [float(i) for i in range(6)]
        assert np.array_equal(stacked, np.stack(BLOCKS))
        counters = registry.snapshot()["counters"]
        assert counters['vectorized.fallbacks{reason="batch_error"}'] == 1

    def test_frozen_stacked_falls_back_with_writable_copies(self):
        # A frozen stacked array marks a shared cache entry: the chamber
        # fallback must hand programs per-query copies, so a legitimate
        # mutating program still succeeds without corrupting the entry.
        def read_then_zero(block):
            out = float(np.mean(block))
            block[...] = 0.0
            return out

        manager = ComputationManager(
            backend="vectorized", metrics=MetricsRegistry()
        )
        stacked = stack_blocks(BLOCKS)
        stacked.flags.writeable = False
        collected = manager.run_blocks_collected(
            read_then_zero, 1, FALLBACK, stacked=stacked
        )
        assert list(collected.outputs[:, 0]) == [float(i) for i in range(6)]
        assert collected.succeeded.all()
        assert np.array_equal(np.asarray(stacked), np.stack(BLOCKS))

    def test_empty_input_is_an_error_not_a_fallback(self):
        # Regression: no blocks at all used to count a ragged_blocks
        # degrade before the chamber path raised.
        registry = MetricsRegistry()
        manager = ComputationManager(backend="vectorized", metrics=registry)
        with pytest.raises(ComputationError):
            manager.run_blocks_collected(Mean(), 1, FALLBACK)
        counters = registry.snapshot()["counters"]
        assert not any(k.startswith("vectorized.fallbacks") for k in counters)

    def test_precomputed_stacked_view_used(self):
        class CountingBatch:
            seen = []

            def __call__(self, block):
                return float(np.mean(block))

            def run_batch(self, stacked):
                CountingBatch.seen.append(stacked.shape)
                return np.mean(stacked[:, :, 0], axis=1)

        manager = ComputationManager(backend="vectorized", metrics=MetricsRegistry())
        stacked = stack_blocks(BLOCKS)
        manager.run_blocks(CountingBatch(), BLOCKS, 1, FALLBACK, stacked=stacked)
        assert CountingBatch.seen == [(6, 4, 1)]


class TestEstimatorBatchParity:
    """run_batch must be the exact vectorization of __call__ — bit-equal."""

    @pytest.mark.parametrize(
        "program",
        [
            Mean(),
            Median(),
            Quantile(q=0.3),
            Variance(),
            StandardDeviation(),
            Count(threshold=0.5),
            Mean(column=1),
            Count(threshold=0.2, column=1, above=False),
        ],
        ids=lambda p: f"{type(p).__name__}-col{p.column}",
    )
    def test_bitwise_parity(self, program):
        rng = np.random.default_rng(99)
        blocks = [rng.uniform(0.0, 1.0, size=(17, 3)) for _ in range(12)]
        stacked = stack_blocks(blocks)
        batch = program.run_batch(stacked)
        serial = np.array([program(block) for block in blocks])
        assert np.array_equal(batch, serial)  # bit-identical, not approx


class TestDeterminismMatrix:
    """The same seeded request releases identical bits on every backend."""

    SEEDS = [4200 + i for i in range(5)]

    @staticmethod
    def _service(backend):
        service = GuptService(
            metrics=MetricsRegistry(), rng=31337, backend=backend, workers=2
        )
        owner = service.enroll(OWNER)
        analyst = service.enroll(ANALYST)
        rng = np.random.default_rng(404)
        table = DataTable(rng.uniform(0.0, 10.0, size=(96, 1)), column_names=("x",))
        service.register_dataset(owner.token, "d", table, total_budget=50.0)
        return service, analyst

    def _run(self, backend, program):
        service, analyst = self._service(backend)
        try:
            values = []
            for seed in self.SEEDS:
                response = service.execute(
                    analyst.token,
                    QueryRequest(
                        dataset="d",
                        program=program,
                        range_strategy=TightRange(((0.0, 10.0),)),
                        epsilon=0.5,
                        block_size=8,
                        seed=seed,
                    ),
                )
                assert response.ok, response.error
                values.append(response.value)
        finally:
            service.close()
        return values

    def test_all_backends_bit_identical(self):
        released = {b: self._run(b, Mean()) for b in BACKENDS}
        assert (
            released["serial"]
            == released["thread"]
            == released["pool"]
            == released["vectorized"]
        )

    def test_matrix_holds_for_median(self):
        # Median exercises a different numpy reduction path (partition,
        # not pairwise sum).
        assert self._run("serial", Median()) == self._run("vectorized", Median())

    def test_warm_cache_repeat_is_bit_identical(self):
        service, analyst = self._service("vectorized")
        request = QueryRequest(
            dataset="d",
            program=Mean(),
            range_strategy=TightRange(((0.0, 10.0),)),
            epsilon=0.5,
            block_size=8,
            seed=777,
        )
        try:
            cold = service.execute(analyst.token, request)
            warm = service.execute(analyst.token, request)
        finally:
            service.close()
        assert cold.ok and warm.ok
        assert cold.value == warm.value


class TestVectorizedTelemetryReleaseSafety:
    # Mirrors tests/test_observability.py: every record lies in the
    # sentinel band; no release-safe metric can legitimately reach it.
    SENTINEL_LO, SENTINEL_HI = 7000.0, 7400.0

    def test_fast_path_metrics_stay_below_the_band(self):
        from tests.test_observability import numeric_leaves

        registry = MetricsRegistry()
        manager = DatasetManager(metrics=registry)
        rng = np.random.default_rng(11)
        values = rng.uniform(
            self.SENTINEL_LO + 50.0, self.SENTINEL_HI - 50.0, size=2000
        )
        manager.register(
            "census",
            DataTable(values, column_names=["v"]),
            total_budget=20.0,
        )
        runtime = GuptRuntime(
            manager, rng=7, metrics=registry, backend="vectorized"
        )
        result = runtime.run(
            "census",
            Mean(),
            TightRange((self.SENTINEL_LO, self.SENTINEL_HI)),
            epsilon=2.0,
            rng=3,
        )
        assert self.SENTINEL_LO - 60 < result.scalar() < self.SENTINEL_HI + 60
        snapshot = registry.snapshot()
        assert snapshot["counters"]["vectorized.batches"] >= 1
        assert any(k.startswith("plan_cache.") for k in snapshot["counters"])
        leaves = numeric_leaves(snapshot)
        assert leaves, "snapshot unexpectedly empty"
        assert max(abs(v) for v in leaves) < self.SENTINEL_LO / 2
