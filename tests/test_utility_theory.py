"""Empirical checks of the paper's utility theory (Appendix A).

Theorem 2: for a generic asymptotically-normal statistic f on i.i.d.
data, the GUPT output converges (in distribution) to f(T) as n grows.
We verify the operational consequence — the error of the private
estimate shrinks as the dataset grows — for three approximately-normal
statistics the paper names: the mean, an OLS coefficient, and a
maximum-likelihood estimator (logistic regression weight).
"""

import numpy as np
import pytest

from repro.core.sample_aggregate import SampleAggregateEngine
from repro.estimators.linreg import LinearRegression
from repro.estimators.logistic_regression import LogisticRegression
from repro.estimators.statistics import Mean

EPSILON = 2.0


def private_errors(engine, make_data, program, output_ranges, truth_fn, sizes, rng,
                   repeats=12):
    """Median |private - truth| at each dataset size."""
    errors = []
    for n in sizes:
        data = make_data(n)
        truth = truth_fn(data)
        samples = []
        for _ in range(repeats):
            release = engine.run(
                data, program, epsilon=EPSILON, output_ranges=output_ranges, rng=rng
            )
            samples.append(abs(release.value[0] - truth))
        errors.append(float(np.median(samples)))
    return errors


class TestTheorem2Convergence:
    def test_mean_error_shrinks_with_n(self, rng):
        engine = SampleAggregateEngine()

        def make_data(n):
            return rng.normal(5.0, 2.0, size=(n, 1)).clip(0, 10)

        errors = private_errors(
            engine, make_data, Mean(), (0.0, 10.0),
            lambda data: float(data.mean()), sizes=(200, 2000, 20000), rng=rng,
        )
        # Error at n=20000 is a fraction of the error at n=200.
        assert errors[-1] < 0.5 * errors[0]

    def test_ols_coefficient_converges(self, rng):
        engine = SampleAggregateEngine()
        model = LinearRegression(num_features=1)

        def make_data(n):
            x = rng.normal(0, 1, size=n)
            y = 2.0 * x + rng.normal(0, 0.5, size=n)
            return np.column_stack([x, y])

        errors = private_errors(
            engine, make_data, model, [(-5.0, 5.0), (-5.0, 5.0)],
            lambda data: 2.0, sizes=(200, 20000), rng=rng,
        )
        assert errors[-1] < 0.6 * errors[0]
        # And the large-n private estimate is actually close to the truth.
        assert errors[-1] < 0.3

    def test_logistic_mle_converges(self, rng):
        engine = SampleAggregateEngine()
        model = LogisticRegression(num_features=1, l2=0.5)

        def make_data(n):
            x = rng.normal(0, 1, size=n)
            p = 1 / (1 + np.exp(-1.5 * x))
            y = (rng.uniform(size=n) < p).astype(float)
            return np.column_stack([x, y])

        ranges = [(-4.0, 4.0), (-4.0, 4.0)]

        def coefficient_error(n, seed):
            generator = np.random.default_rng(seed)
            x = generator.normal(0, 1, size=n)
            p = 1 / (1 + np.exp(-1.5 * x))
            y = (generator.uniform(size=n) < p).astype(float)
            data = np.column_stack([x, y])
            # Compare against the same trainer on the full data (the MLE),
            # which is what Theorem 2's f(T) is.
            truth = model(data)[0]
            samples = [
                abs(engine.run(data, model, epsilon=EPSILON,
                               output_ranges=ranges, rng=generator).value[0] - truth)
                for _ in range(12)
            ]
            return float(np.median(samples))

        small = np.median([coefficient_error(300, seed) for seed in (1, 2, 3)])
        large = coefficient_error(20000, 4)
        assert large < 0.7 * small

    def test_noise_share_of_error_vanishes(self, rng):
        # The Laplace scale is width/(l * eps) with l = n**0.4: it must
        # fall polynomially in n.
        engine = SampleAggregateEngine()
        scales = []
        for n in (100, 10000):
            data = rng.uniform(0, 1, size=(n, 1))
            release = engine.run(
                data, Mean(), epsilon=EPSILON, output_ranges=(0.0, 1.0), rng=rng
            )
            scales.append(release.noise_scales[0])
        assert scales[1] < scales[0] / 4


class TestNonNormalStatisticsKeepPrivacyOnly:
    def test_max_statistic_is_private_but_biased(self, rng):
        """§3.2: non-approximately-normal queries keep the privacy
        guarantee but get no accuracy guarantee.  The max is the classic
        example: the block average of block-maxima underestimates the
        true max, and no amount of data fixes that."""
        engine = SampleAggregateEngine()
        data = rng.uniform(0, 10, size=(20000, 1))

        def block_max(block):
            return float(block.max())

        release = engine.run(
            data, block_max, epsilon=100.0, output_ranges=(0.0, 10.0),
            block_size=20, rng=rng,
        )
        truth = float(data.max())
        # Still a valid, bounded, private release...
        assert 0.0 <= release.scalar() <= 10.5
        # ...but biased well below the true maximum: the average of
        # 20-sample maxima concentrates near 10 * 20/21, not 10.
        assert release.scalar() < truth - 0.2
